//! A sparse amplitude-map statevector backend.
//!
//! The dense [`State`] stores all `2ⁿ` amplitudes and therefore stops at
//! [`MAX_QUBITS`](crate::state::MAX_QUBITS) = 26 qubits; the stabilizer
//! tableau scales to hundreds of qubits but only for Clifford circuits.
//! The workloads the assertion debugger actually cares about past the
//! dense ceiling — Shor-style modular arithmetic, fault-injected error
//! correction codes — are non-Clifford but keep *exponentially sparse
//! support*: at any prefix the state is a superposition of far fewer
//! basis states than `2ⁿ`. [`SparseState`] stores exactly that support
//! as a sorted `(basis index, amplitude)` vector and implements the full
//! [`SimBackend`] contract, so every engine above it (sweep, trajectory
//! tree, pooled checkpoints, exact verdicts) works unchanged at 30–60
//! qubits.
//!
//! ## Cost model
//!
//! With `s` the live support size, every kernel is `O(s)` (the general
//! 2×2 kernel is `O(s log s)` for the re-sort) and memory is `O(s)`.
//! Diagonal and permutation kernels (phase gates, X/CX chains, swaps)
//! never grow `s`; only a general kernel (H, rotations about X/Y) can
//! double it. A program whose branching gates act on a bounded set of
//! qubits therefore stays cheap at any width.
//!
//! ## Dense fallback
//!
//! When the support density passes [`DENSIFY_NUMERATOR`]` / `
//! [`DENSIFY_DENOMINATOR`] on a state small enough for the dense engine
//! (≤ 26 qubits), the sparse representation is silently converted to a
//! dense [`State`] and all further work delegates to it — the sorted-vec
//! bookkeeping only pays for itself while the state is actually sparse.
//! The conversion is exact (same amplitudes), so verdicts are unchanged.
//!
//! ## Determinism
//!
//! [`measure_qubit`](SimBackend::measure_qubit) mirrors the dense
//! backend's draw order exactly: one uniform per measurement, compared
//! against `P(1)`, then a deterministic projection. Within this backend,
//! equal seeds give bit-identical runs; across backends only the
//! distributions agree (floating-point summation order differs).

use std::collections::HashMap;

use rand::Rng;

use crate::backend::{KernelOp, SimBackend, SimOp};
use crate::complex::Complex;
use crate::error::SimError;
use crate::gates::Matrix2;
use crate::measure::extract_bits;
use crate::state::{self, Pauli, State};

/// Hard cap on qubit count: basis indices are packed into a `u64`.
pub const MAX_QUBITS: usize = 64;

/// Amplitudes with squared magnitude at or below this are pruned after a
/// branching kernel — they are numeric zeros (e.g. the cancelled branch
/// of `H·H`), and keeping them would make "support size" meaningless.
pub const PRUNE_EPSILON: f64 = 1e-32;

/// Densification triggers when `support * DENSIFY_DENOMINATOR ≥
/// dim * DENSIFY_NUMERATOR` (i.e. density ≥ 1/4) …
pub const DENSIFY_NUMERATOR: usize = 1;
/// … see [`DENSIFY_NUMERATOR`].
pub const DENSIFY_DENOMINATOR: usize = 4;

/// Densification never triggers below this dimension: for tiny states
/// the sorted vec is already as fast as the dense array, and converting
/// would only blur the sparse path's test coverage.
const DENSIFY_MIN_DIM: usize = 64;

/// The concrete representation: sparse support map, or the dense
/// fallback once density passed the threshold.
#[derive(Debug, Clone)]
enum Repr {
    /// Sorted by basis index; invariant: indices strictly increasing,
    /// no entry with `norm_sqr == 0` surviving a branching kernel.
    Amps(Vec<(u64, Complex)>),
    /// Dense fallback (only reachable at ≤ 26 qubits).
    Dense(State),
}

/// A pure state stored as its basis-state support: a sorted vector of
/// `(index, amplitude)` pairs.
///
/// ```
/// use qdb_sim::{SimBackend, SparseState};
///
/// // 40 qubits is far beyond the dense engine's 26-qubit ceiling, but
/// // |0…0⟩ is a single entry here.
/// let s = SparseState::zero(40).unwrap();
/// assert_eq!(s.num_qubits(), 40);
/// assert_eq!(s.support_len(), 1);
/// assert!((s.prob_one(39) - 0.0).abs() < 1e-15);
/// ```
#[derive(Debug, Clone)]
pub struct SparseState {
    num_qubits: usize,
    repr: Repr,
    gate_ops: u64,
    max_support: usize,
}

impl SparseState {
    /// The all-zeros state `|0…0⟩` (one support entry).
    ///
    /// # Errors
    ///
    /// * [`SimError::InvalidDimension`] when `num_qubits == 0`;
    /// * [`SimError::TooManyQubits`] above [`MAX_QUBITS`] (64).
    pub fn zero(num_qubits: usize) -> Result<Self, SimError> {
        if num_qubits == 0 {
            return Err(SimError::InvalidDimension(0));
        }
        if num_qubits > MAX_QUBITS {
            return Err(SimError::TooManyQubits(num_qubits));
        }
        Ok(Self {
            num_qubits,
            repr: Repr::Amps(vec![(0, Complex::ONE)]),
            gate_ops: 0,
            max_support: 1,
        })
    }

    /// Number of basis states currently carrying amplitude.
    ///
    /// After the dense fallback this counts the dense vector's non-zero
    /// entries, so the reported figure stays comparable.
    #[must_use]
    pub fn support_len(&self) -> usize {
        match &self.repr {
            Repr::Amps(amps) => amps.len(),
            Repr::Dense(state) => state
                .amplitudes()
                .iter()
                .filter(|a| a.norm_sqr() > 0.0)
                .count(),
        }
    }

    /// High-water mark of [`support_len`](SparseState::support_len) over
    /// the state's history — the peak working-set size, recorded for the
    /// scaling benchmarks.
    #[must_use]
    pub fn max_support(&self) -> usize {
        self.max_support
    }

    /// Number of lowered ops and Paulis applied (the sparse sibling of
    /// [`State::gate_ops`]; a `clone()` inherits the count).
    #[must_use]
    pub fn gate_ops(&self) -> u64 {
        self.gate_ops
    }

    /// `true` once the runtime dense fallback has fired (support density
    /// passed 1/4 on a ≤ 26-qubit state).
    #[must_use]
    pub fn is_densified(&self) -> bool {
        matches!(self.repr, Repr::Dense(_))
    }

    fn check_qubit(&self, q: usize) {
        assert!(
            q < self.num_qubits,
            "qubit {q} out of range for {}-qubit sparse state",
            self.num_qubits
        );
    }

    /// Sum of `|amp|²` — 1 for a valid state up to float error.
    #[must_use]
    pub fn norm_sqr(&self) -> f64 {
        match &self.repr {
            Repr::Amps(amps) => amps.iter().map(|(_, a)| a.norm_sqr()).sum(),
            Repr::Dense(state) => state.norm_sqr(),
        }
    }

    fn record_support(&mut self) {
        if let Repr::Amps(amps) = &self.repr {
            self.max_support = self.max_support.max(amps.len());
        }
    }

    /// Convert to the dense representation when the support is no longer
    /// sparse and the state fits the dense engine. Exact: amplitudes are
    /// copied verbatim (then normalized, a no-op up to float error).
    fn maybe_densify(&mut self) {
        let Repr::Amps(amps) = &self.repr else {
            return;
        };
        if self.num_qubits > state::MAX_QUBITS {
            return;
        }
        let dim = 1usize << self.num_qubits;
        if dim < DENSIFY_MIN_DIM || amps.len() * DENSIFY_DENOMINATOR < dim * DENSIFY_NUMERATOR {
            return;
        }
        let mut dense = vec![Complex::ZERO; dim];
        for &(idx, a) in amps {
            dense[idx as usize] = a;
        }
        let state = State::from_amplitudes(dense).expect("a live support has non-zero norm");
        self.repr = Repr::Dense(state);
    }
}

/// `amps[idx]` if present (binary search on the sorted invariant).
fn lookup(amps: &[(u64, Complex)], idx: u64) -> Option<Complex> {
    amps.binary_search_by_key(&idx, |&(i, _)| i)
        .ok()
        .map(|pos| amps[pos].1)
}

/// `diag(d0, d1)` on the control-satisfying entries: in-place scalar
/// multiplies, order preserved.
fn apply_diagonal(amps: &mut [(u64, Complex)], cmask: u64, tmask: u64, d0: Complex, d1: Complex) {
    for (idx, amp) in amps.iter_mut() {
        if *idx & cmask == cmask {
            *amp *= if *idx & tmask == 0 { d0 } else { d1 };
        }
    }
}

/// Anti-diagonal `[[0, a01], [a10, 0]]`: each satisfying entry flips its
/// target bit (bit 0 → 1 with factor `a10`, bit 1 → 0 with `a01`).
fn apply_antidiagonal(
    amps: &mut [(u64, Complex)],
    cmask: u64,
    tmask: u64,
    a01: Complex,
    a10: Complex,
) {
    for (idx, amp) in amps.iter_mut() {
        if *idx & cmask == cmask {
            *amp *= if *idx & tmask == 0 { a10 } else { a01 };
            *idx ^= tmask;
        }
    }
    amps.sort_unstable_by_key(|&(i, _)| i);
}

/// (Controlled) swap: satisfying entries with differing target/other
/// bits flip both.
fn apply_swap(amps: &mut [(u64, Complex)], cmask: u64, tmask: u64, omask: u64) {
    for (idx, _) in amps.iter_mut() {
        if *idx & cmask == cmask {
            let differ = ((*idx & tmask) == 0) != ((*idx & omask) == 0);
            if differ {
                *idx ^= tmask | omask;
            }
        }
    }
    amps.sort_unstable_by_key(|&(i, _)| i);
}

/// Dense 2×2 on the control-satisfying subspace — the only kernel that
/// can grow the support. Entries are paired through their target bit:
/// a bit-0 entry computes both output amplitudes (using its bit-1
/// partner's amplitude, or zero); a bit-1 entry acts alone only when no
/// bit-0 partner exists. Outputs below [`PRUNE_EPSILON`] are dropped.
fn apply_general(amps: &mut Vec<(u64, Complex)>, cmask: u64, tmask: u64, m: &Matrix2) {
    let m = m.0;
    let mut out: Vec<(u64, Complex)> = Vec::with_capacity(amps.len() * 2);
    fn push(out: &mut Vec<(u64, Complex)>, idx: u64, amp: Complex) {
        if amp.norm_sqr() > PRUNE_EPSILON {
            out.push((idx, amp));
        }
    }
    for &(idx, amp) in amps.iter() {
        if idx & cmask != cmask {
            out.push((idx, amp));
            continue;
        }
        if idx & tmask == 0 {
            let partner = lookup(amps, idx | tmask).unwrap_or(Complex::ZERO);
            push(&mut out, idx, m[0][0] * amp + m[0][1] * partner);
            push(&mut out, idx | tmask, m[1][0] * amp + m[1][1] * partner);
        } else if lookup(amps, idx & !tmask).is_none() {
            // No bit-0 partner: this entry is a pair of its own.
            push(&mut out, idx & !tmask, m[0][1] * amp);
            push(&mut out, idx, m[1][1] * amp);
        }
        // A bit-1 entry whose bit-0 partner exists was already emitted
        // by the partner's branch above.
    }
    out.sort_unstable_by_key(|&(i, _)| i);
    *amps = out;
}

impl SimBackend for SparseState {
    const NAME: &'static str = "sparse";

    fn zero(num_qubits: usize) -> Result<Self, SimError> {
        SparseState::zero(num_qubits)
    }

    fn resident_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + match &self.repr {
                Repr::Amps(amps) => amps.capacity() * std::mem::size_of::<(u64, Complex)>(),
                Repr::Dense(state) => state.resident_bytes(),
            }
    }

    fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    fn supports_op(&self, _op: &SimOp) -> bool {
        true
    }

    fn copy_from(&mut self, source: &Self) {
        self.num_qubits = source.num_qubits;
        self.gate_ops = source.gate_ops;
        self.max_support = source.max_support;
        match (&mut self.repr, &source.repr) {
            (Repr::Amps(dst), Repr::Amps(src)) => dst.clone_from(src),
            (Repr::Dense(dst), Repr::Dense(src)) => dst.copy_from(src),
            (dst, src) => *dst = src.clone(),
        }
    }

    fn apply_op(&mut self, op: &SimOp) {
        let mut cmask = 0u64;
        for &c in op.controls() {
            self.check_qubit(c);
            assert!(c != op.target(), "control {c} equals target");
            cmask |= 1 << c;
        }
        let target = op.target();
        self.check_qubit(target);
        let tmask = 1u64 << target;
        if let KernelOp::Swap { other } = op.kernel() {
            self.check_qubit(*other);
            if *other == target {
                return; // swap(q, q): no work, no count (matches dense)
            }
        }
        self.gate_ops += 1;
        match &mut self.repr {
            Repr::Dense(state) => state.apply_op(op),
            Repr::Amps(amps) => match op.kernel() {
                KernelOp::Diagonal { d0, d1 } => apply_diagonal(amps, cmask, tmask, *d0, *d1),
                KernelOp::AntiDiagonal { a01, a10 } => {
                    apply_antidiagonal(amps, cmask, tmask, *a01, *a10);
                }
                KernelOp::Swap { other } => apply_swap(amps, cmask, tmask, 1u64 << *other),
                KernelOp::General(m) => {
                    apply_general(amps, cmask, tmask, m);
                    self.record_support();
                    self.maybe_densify();
                }
            },
        }
    }

    fn apply_pauli(&mut self, q: usize, p: Pauli) {
        self.check_qubit(q);
        if p == Pauli::I {
            return; // identity: no work, no count (matches dense)
        }
        self.gate_ops += 1;
        let tmask = 1u64 << q;
        match &mut self.repr {
            Repr::Dense(state) => SimBackend::apply_pauli(state, q, p),
            Repr::Amps(amps) => match p {
                Pauli::I => unreachable!(),
                // X = [[0, 1], [1, 0]], Y = [[0, −i], [i, 0]]: both are
                // anti-diagonal, i.e. a bit flip with per-branch phases.
                Pauli::X => apply_antidiagonal(amps, 0, tmask, Complex::ONE, Complex::ONE),
                Pauli::Y => apply_antidiagonal(amps, 0, tmask, -Complex::I, Complex::I),
                Pauli::Z => apply_diagonal(amps, 0, tmask, Complex::ONE, -Complex::ONE),
            },
        }
    }

    fn prob_one(&self, q: usize) -> f64 {
        self.check_qubit(q);
        match &self.repr {
            Repr::Dense(state) => state.prob_one(q),
            Repr::Amps(amps) => {
                let mask = 1u64 << q;
                amps.iter()
                    .filter(|(idx, _)| idx & mask != 0)
                    .map(|(_, a)| a.norm_sqr())
                    .sum()
            }
        }
    }

    fn measure_qubit<R: Rng + ?Sized>(&mut self, q: usize, rng: &mut R) -> u8 {
        self.check_qubit(q);
        // One uniform per measurement, always — the same stream contract
        // as the dense backend, so a seeded trajectory consumes the RNG
        // identically whichever representation is live.
        let p1 = self.prob_one(q);
        let bit = u8::from(rng.gen::<f64>() < p1);
        match &mut self.repr {
            Repr::Dense(state) => {
                // Project on the dense state directly (its own
                // measure_qubit would draw a second uniform).
                state.project_qubit(q, bit);
            }
            Repr::Amps(amps) => {
                let mask = 1u64 << q;
                amps.retain(|(idx, _)| (idx & mask != 0) == (bit == 1));
                let norm_sqr: f64 = amps.iter().map(|(_, a)| a.norm_sqr()).sum();
                assert!(
                    norm_sqr > 1e-12,
                    "projection onto outcome {bit} of qubit {q} has zero norm"
                );
                let scale = norm_sqr.sqrt().recip();
                for (_, a) in amps.iter_mut() {
                    *a = a.scale(scale);
                }
            }
        }
        bit
    }

    fn outcome_distribution(&self, qubits: &[usize]) -> HashMap<u64, f64> {
        assert!(qubits.len() <= 64, "cannot pack more than 64 qubits");
        for &q in qubits {
            self.check_qubit(q);
        }
        match &self.repr {
            Repr::Dense(state) => state.outcome_distribution(qubits),
            Repr::Amps(amps) => {
                let mut dist: HashMap<u64, f64> = HashMap::new();
                for &(idx, a) in amps {
                    let p = a.norm_sqr();
                    if p > 0.0 {
                        *dist.entry(extract_bits(idx, qubits)).or_insert(0.0) += p;
                    }
                }
                dist
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::CliffordOp;
    use crate::gates;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn h_op(target: usize) -> SimOp {
        SimOp::new(vec![], target, KernelOp::General(gates::h()))
    }

    fn x_op(controls: Vec<usize>, target: usize) -> SimOp {
        SimOp::new(
            controls,
            target,
            KernelOp::AntiDiagonal {
                a01: Complex::ONE,
                a10: Complex::ONE,
            },
        )
    }

    fn t_op(target: usize) -> SimOp {
        let m = gates::t().0;
        SimOp::new(
            vec![],
            target,
            KernelOp::Diagonal {
                d0: m[0][0],
                d1: m[1][1],
            },
        )
    }

    fn assert_dist_eq(a: &HashMap<u64, f64>, b: &HashMap<u64, f64>, tol: f64) {
        for key in a.keys().chain(b.keys()) {
            let pa = a.get(key).copied().unwrap_or(0.0);
            let pb = b.get(key).copied().unwrap_or(0.0);
            assert!(
                (pa - pb).abs() <= tol,
                "outcome {key:#b}: {pa} vs {pb} (diff {})",
                (pa - pb).abs()
            );
        }
    }

    #[test]
    fn zero_state_guards_and_shape() {
        assert!(matches!(
            SparseState::zero(0),
            Err(SimError::InvalidDimension(0))
        ));
        assert!(matches!(
            SparseState::zero(65),
            Err(SimError::TooManyQubits(65))
        ));
        let s = SparseState::zero(64).unwrap();
        assert_eq!(s.num_qubits(), 64);
        assert_eq!(s.support_len(), 1);
        assert!((s.norm_sqr() - 1.0).abs() < 1e-15);
        assert!(!s.is_densified());
    }

    #[test]
    fn bell_state_support_and_distribution() {
        let mut s = SparseState::zero(2).unwrap();
        s.apply_op(&h_op(0));
        s.apply_op(&x_op(vec![0], 1));
        assert_eq!(s.support_len(), 2);
        let dist = s.outcome_distribution(&[0, 1]);
        assert_eq!(dist.len(), 2);
        assert!((dist[&0b00] - 0.5).abs() < 1e-12);
        assert!((dist[&0b11] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn cancelled_branches_are_pruned() {
        // H·H = I: the |1⟩ branch cancels to a numeric zero and must
        // not linger in the support.
        let mut s = SparseState::zero(8).unwrap();
        s.apply_op(&h_op(3));
        assert_eq!(s.support_len(), 2);
        s.apply_op(&h_op(3));
        assert_eq!(s.support_len(), 1);
        assert_eq!(s.max_support(), 2);
        let dist = s.outcome_distribution(&[3]);
        assert!((dist[&0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn general_kernel_handles_lone_bit1_entries() {
        // Put all amplitude on |1⟩ (no bit-0 partner), then H: must
        // produce (|0⟩ − |1⟩)/√2 via the lone-entry branch.
        let mut s = SparseState::zero(1).unwrap();
        s.apply_pauli(0, Pauli::X);
        s.apply_op(&h_op(0));
        let dist = s.outcome_distribution(&[0]);
        assert!((dist[&0] - 0.5).abs() < 1e-12);
        assert!((dist[&1] - 0.5).abs() < 1e-12);
        // And the phases are right: a second H restores |1⟩.
        s.apply_op(&h_op(0));
        let dist = s.outcome_distribution(&[0]);
        assert!((dist[&1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn matches_dense_backend_on_random_circuits() {
        // Random mixed circuits on 6 qubits: the sparse backend must
        // produce the same full-register distribution as the dense one.
        let n = 6;
        let all: Vec<usize> = (0..n).collect();
        for seed in 0..10u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut sparse = SparseState::zero(n).unwrap();
            let mut dense = <State as SimBackend>::zero(n).unwrap();
            for _ in 0..40 {
                let target = rng.gen_range(0..n);
                let op = match rng.gen_range(0..6u32) {
                    0 => h_op(target),
                    1 => t_op(target),
                    2 => SimOp::new(vec![], target, KernelOp::General(gates::ry(0.37))),
                    3 | 4 => {
                        let mut c = rng.gen_range(0..n - 1);
                        if c >= target {
                            c += 1;
                        }
                        x_op(vec![c], target)
                    }
                    _ => {
                        let mut other = rng.gen_range(0..n - 1);
                        if other >= target {
                            other += 1;
                        }
                        SimOp::new(vec![], target, KernelOp::Swap { other })
                    }
                };
                sparse.apply_op(&op);
                dense.apply_op(&op);
            }
            assert_dist_eq(
                &sparse.outcome_distribution(&all),
                &dense.outcome_distribution(&all),
                1e-9,
            );
            for q in 0..n {
                assert!((sparse.prob_one(q) - dense.prob_one(q)).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn paulis_match_dense_backend() {
        let mut sparse = SparseState::zero(3).unwrap();
        let mut dense = <State as SimBackend>::zero(3).unwrap();
        for op in [h_op(0), x_op(vec![0], 1), t_op(2)] {
            sparse.apply_op(&op);
            dense.apply_op(&op);
        }
        for (q, p) in [(0, Pauli::X), (1, Pauli::Y), (2, Pauli::Z), (0, Pauli::I)] {
            sparse.apply_pauli(q, p);
            SimBackend::apply_pauli(&mut dense, q, p);
        }
        let all = [0, 1, 2];
        assert_dist_eq(
            &sparse.outcome_distribution(&all),
            &dense.outcome_distribution(&all),
            1e-12,
        );
        // I draws no gate count, the three real Paulis do.
        assert_eq!(sparse.gate_ops(), 3 + 3);
    }

    #[test]
    fn measurement_collapses_and_renormalizes() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..50 {
            let mut s = SparseState::zero(2).unwrap();
            s.apply_op(&h_op(0));
            s.apply_op(&x_op(vec![0], 1));
            let bit = s.measure_qubit(0, &mut rng);
            // Bell state: the partner qubit must agree.
            assert_eq!(s.support_len(), 1);
            assert!((s.norm_sqr() - 1.0).abs() < 1e-12);
            assert!((s.prob_one(1) - f64::from(bit)).abs() < 1e-12);
        }
    }

    #[test]
    fn sample_once_respects_support() {
        let mut s = SparseState::zero(40).unwrap();
        s.apply_op(&h_op(7));
        s.apply_op(&x_op(vec![7], 39));
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            let o = s.sample_once(&[7, 39], &mut rng);
            assert!(o == 0b00 || o == 0b11, "impossible outcome {o:#b}");
            seen.insert(o);
        }
        assert_eq!(seen.len(), 2, "both branches should appear in 100 shots");
    }

    #[test]
    fn densify_fallback_fires_and_stays_exact() {
        // H on every qubit of an 8-qubit state: support 256 = dim, far
        // past the 1/4 density threshold → the dense fallback must fire
        // and keep the uniform distribution exact.
        let n = 8;
        let mut s = SparseState::zero(n).unwrap();
        for q in 0..n {
            s.apply_op(&h_op(q));
        }
        assert!(s.is_densified());
        let all: Vec<usize> = (0..n).collect();
        let dist = s.outcome_distribution(&all);
        assert_eq!(dist.len(), 256);
        for p in dist.values() {
            assert!((p - 1.0 / 256.0).abs() < 1e-12);
        }
        // Ops keep working (and counting) after the conversion.
        let ops_before = s.gate_ops();
        s.apply_op(&t_op(0));
        s.apply_pauli(1, Pauli::X);
        assert_eq!(s.gate_ops(), ops_before + 2);
        // Measurement on the dense path still draws one uniform and
        // projects.
        let mut rng = StdRng::seed_from_u64(5);
        let _ = s.measure_qubit(0, &mut rng);
        assert!((s.norm_sqr() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn wide_states_never_densify() {
        // 40 qubits can't fall back to dense (it wouldn't fit); density
        // is irrelevant there.
        let mut s = SparseState::zero(40).unwrap();
        for q in 0..6 {
            s.apply_op(&h_op(q));
        }
        assert_eq!(s.support_len(), 64);
        assert!(!s.is_densified());
    }

    #[test]
    fn copy_from_recycles_across_representations() {
        let mut a = SparseState::zero(4).unwrap();
        a.apply_op(&h_op(0));
        a.apply_op(&x_op(vec![0], 2));

        // Sparse → sparse.
        let mut b = SparseState::zero(4).unwrap();
        b.copy_from(&a);
        assert_eq!(b.gate_ops(), a.gate_ops());
        assert_eq!(b.support_len(), a.support_len());
        assert_dist_eq(
            &a.outcome_distribution(&[0, 1, 2, 3]),
            &b.outcome_distribution(&[0, 1, 2, 3]),
            0.0,
        );

        // Mixed representations (and mismatched qubit counts).
        let mut wide = SparseState::zero(30).unwrap();
        wide.copy_from(&a);
        assert_eq!(wide.num_qubits(), 4);

        let mut dense_src = SparseState::zero(8).unwrap();
        for q in 0..8 {
            dense_src.apply_op(&h_op(q));
        }
        assert!(dense_src.is_densified());
        let mut sparse_dst = SparseState::zero(8).unwrap();
        sparse_dst.copy_from(&dense_src);
        assert!(sparse_dst.is_densified());
        assert_eq!(sparse_dst.gate_ops(), dense_src.gate_ops());
    }

    #[test]
    fn controlled_swap_and_diagonal_respect_controls() {
        // |101⟩: control (qubit 2) set → swap qubits 0, 1 → |110⟩.
        let mut s = SparseState::zero(3).unwrap();
        s.apply_pauli(0, Pauli::X);
        s.apply_pauli(2, Pauli::X);
        s.apply_op(&SimOp::new(vec![2], 0, KernelOp::Swap { other: 1 }));
        let dist = s.outcome_distribution(&[0, 1, 2]);
        assert!((dist[&0b110] - 1.0).abs() < 1e-12);
        // Clear the control → swap must not fire.
        s.apply_pauli(2, Pauli::X);
        s.apply_op(&SimOp::new(vec![2], 0, KernelOp::Swap { other: 1 }));
        let dist = s.outcome_distribution(&[0, 1, 2]);
        assert!((dist[&0b010] - 1.0).abs() < 1e-12);
        // swap(q, q) is a no-op and counts nothing.
        let ops = s.gate_ops();
        s.apply_op(&SimOp::new(vec![], 1, KernelOp::Swap { other: 1 }));
        assert_eq!(s.gate_ops(), ops);
    }

    #[test]
    fn supports_every_op_shape() {
        let s = SparseState::zero(2).unwrap();
        let clifford = x_op(vec![0], 1).with_clifford(Some(CliffordOp::Cx {
            control: 0,
            target: 1,
        }));
        assert!(s.supports_op(&clifford));
        assert!(s.supports_op(&h_op(0)));
        assert_eq!(SparseState::NAME, "sparse");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_target_panics() {
        let mut s = SparseState::zero(2).unwrap();
        s.apply_op(&h_op(2));
    }
}
