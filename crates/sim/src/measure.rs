//! Measurement: ensemble sampling and collapsing mid-circuit measurement.
//!
//! The paper's assertion checks run an *ensemble* of complete program
//! executions, measuring everything at a breakpoint. For that use case the
//! state is computed once and sampled many times without collapse
//! ([`Sampler`]). Iterative phase estimation (the chemistry benchmark)
//! additionally needs true mid-circuit collapse
//! ([`measure_qubit`](crate::State::measure_qubit)) with classical
//! feed-forward.

use rand::Rng;

use crate::complex::Complex;
use crate::state::State;

/// Extract the bits of `outcome` at the given qubit positions, packing them
/// so `qubits[0]` becomes bit 0 of the result.
///
/// This converts a full-register measurement outcome into the integer value
/// of a named quantum variable (the paper's register-to-qubit bookkeeping,
/// see its footnote 3).
///
/// ```
/// use qdb_sim::measure::extract_bits;
/// // outcome 0b1101, variable on qubits [2, 3] → bits 1, 1 → 3
/// assert_eq!(extract_bits(0b1101, &[2, 3]), 0b11);
/// // qubit order matters: [3, 2] packs bit 3 first
/// assert_eq!(extract_bits(0b0100, &[3, 2]), 0b10);
/// ```
#[must_use]
pub fn extract_bits(outcome: u64, qubits: &[usize]) -> u64 {
    let mut value = 0u64;
    for (pos, &q) in qubits.iter().enumerate() {
        if outcome & (1 << q) != 0 {
            value |= 1 << pos;
        }
    }
    value
}

/// A reusable sampler over the Born-rule distribution of a [`State`].
///
/// Builds the cumulative distribution once (`O(2ⁿ)`) and then draws each
/// shot in `O(n)` by binary search — the ensemble-of-16…4096 sampling
/// pattern of the paper costs almost nothing beyond the state preparation.
///
/// ```
/// use qdb_sim::{gates, Sampler, State};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut s = State::zero(1);
/// s.apply_1q(0, &gates::h());
/// let sampler = Sampler::new(&s);
/// let mut rng = StdRng::seed_from_u64(7);
/// let shots: Vec<u64> = (0..100).map(|_| sampler.sample(&mut rng)).collect();
/// assert!(shots.iter().any(|&x| x == 0) && shots.iter().any(|&x| x == 1));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Sampler {
    /// cdf[i] = P(outcome ≤ i); last entry forced to 1.0.
    cdf: Vec<f64>,
}

impl Sampler {
    /// Build a sampler from the state's probability vector.
    #[must_use]
    pub fn new(state: &State) -> Self {
        let mut sampler = Self {
            cdf: Vec::with_capacity(state.dim()),
        };
        sampler.rebuild(state);
        sampler
    }

    /// Rebuild this sampler over a (new) state, reusing the CDF
    /// allocation.
    ///
    /// A loop that samples many states of the same size — the
    /// per-breakpoint ensemble loop of the sweep engine — allocates one
    /// buffer up front (`Sampler::default()`) and rebuilds it at each
    /// stop, instead of paying a fresh `2ⁿ` allocation per breakpoint
    /// via [`Sampler::new`]. The CDF is computed by the same
    /// accumulation in the same order, so the two construction routes
    /// sample identically, bit for bit. A default-constructed sampler
    /// must be rebuilt before use (it has no outcomes).
    pub fn rebuild(&mut self, state: &State) {
        state.probabilities_into(&mut self.cdf);
        let mut acc = 0.0;
        for p in &mut self.cdf {
            acc += *p;
            *p = acc;
        }
        if let Some(last) = self.cdf.last_mut() {
            *last = 1.0;
        }
    }

    /// Draw one full-register outcome (a basis index).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.gen();
        self.sample_at(u)
    }

    /// Draw a single outcome directly from `state`, bit-identical to
    /// `Sampler::new(state).sample(rng)` but without materializing the
    /// CDF.
    ///
    /// A caller that needs exactly one shot per state — the noisy
    /// trajectory engine measures each freshly-simulated trajectory
    /// once — pays one accumulating scan (with early exit) instead of a
    /// `2ⁿ` allocation plus a binary search. The running sum performs
    /// the same additions in the same order as the CDF construction,
    /// and the selection rule ("first index whose CDF value strictly
    /// exceeds `u`, last bin forced to cover 1.0") is the same, so the
    /// outcome matches the sampler's bit for bit.
    pub fn sample_once<R: Rng + ?Sized>(state: &State, rng: &mut R) -> u64 {
        let u: f64 = rng.gen();
        let mut acc = 0.0;
        for i in 0..state.dim() - 1 {
            acc += state.probability(i);
            if acc > u {
                return i as u64;
            }
        }
        // The sampler forces the last CDF entry to 1.0 > u.
        (state.dim() - 1) as u64
    }

    /// The outcome the inverse-CDF transform assigns to the uniform
    /// variate `u ∈ [0, 1)`.
    ///
    /// [`sample`](Sampler::sample) is exactly `sample_at(rng.gen())`,
    /// so a caller that pre-draws its uniforms serially can map them
    /// through `sample_at` in any order — including in parallel — and
    /// still reproduce the serial sampling stream bit for bit. The
    /// sweep engine in `qdb-core` uses this to parallelize per-shot
    /// sampling without changing any ensemble.
    #[must_use]
    pub fn sample_at(&self, u: f64) -> u64 {
        // First index whose CDF value strictly exceeds u.
        match self
            .cdf
            .binary_search_by(|probe| probe.partial_cmp(&u).expect("cdf is finite"))
        {
            Ok(mut i) => {
                // Landed exactly on a CDF value: advance past zero-width bins.
                while i + 1 < self.cdf.len() && self.cdf[i + 1] <= u {
                    i += 1;
                }
                (i + 1).min(self.cdf.len() - 1) as u64
            }
            Err(i) => i as u64,
        }
    }

    /// Draw `shots` outcomes.
    pub fn sample_many<R: Rng + ?Sized>(&self, rng: &mut R, shots: usize) -> Vec<u64> {
        (0..shots).map(|_| self.sample(rng)).collect()
    }

    /// Draw `shots` outcomes and project each onto a quantum variable's
    /// qubits (see [`extract_bits`]).
    pub fn sample_variable<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        qubits: &[usize],
        shots: usize,
    ) -> Vec<u64> {
        (0..shots)
            .map(|_| extract_bits(self.sample(rng), qubits))
            .collect()
    }
}

impl State {
    /// Measure qubit `q` in the computational basis, collapsing the state.
    ///
    /// Returns the observed bit. The state is renormalized onto the
    /// observed branch (projective measurement). This is the mid-circuit
    /// measurement primitive required by iterative phase estimation.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn measure_qubit<R: Rng + ?Sized>(&mut self, q: usize, rng: &mut R) -> u8 {
        let p1 = self.prob_one(q);
        let bit = u8::from(rng.gen::<f64>() < p1);
        self.project_qubit(q, bit);
        bit
    }

    /// Project qubit `q` onto `bit` and renormalize (post-selection).
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range or the branch has zero probability.
    pub fn project_qubit(&mut self, q: usize, bit: u8) {
        assert!(q < self.num_qubits(), "qubit {q} out of range");
        let mask = 1usize << q;
        let keep_set = bit == 1;
        let mut norm_sqr = 0.0;
        for i in 0..self.dim() {
            if ((i & mask) != 0) == keep_set {
                norm_sqr += self.probability(i);
            }
        }
        assert!(
            norm_sqr > 1e-12,
            "projection onto zero-probability branch (qubit {q} = {bit})"
        );
        let scale = norm_sqr.sqrt().recip();
        let amps = self.amps_mut();
        for (i, a) in amps.iter_mut().enumerate() {
            if ((i & mask) != 0) == keep_set {
                *a = a.scale(scale);
            } else {
                *a = Complex::ZERO;
            }
        }
    }

    /// Measure qubit `q` and then reset it to `|0⟩` (measure-and-reset, as
    /// used to recycle the ancilla in iterative phase estimation).
    ///
    /// Returns the pre-reset measurement outcome.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn measure_and_reset_qubit<R: Rng + ?Sized>(&mut self, q: usize, rng: &mut R) -> u8 {
        let bit = self.measure_qubit(q, rng);
        if bit == 1 {
            self.apply_1q(q, &crate::gates::x());
        }
        bit
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gates;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn extract_bits_identity_order() {
        assert_eq!(extract_bits(0b1011, &[0, 1, 2, 3]), 0b1011);
        assert_eq!(extract_bits(0b1011, &[1, 3]), 0b11);
        assert_eq!(extract_bits(0b1011, &[2]), 0);
        assert_eq!(extract_bits(0, &[]), 0);
    }

    #[test]
    fn sampler_on_basis_state_is_deterministic() {
        let s = State::basis(3, 5).unwrap();
        let sampler = Sampler::new(&s);
        let mut r = rng(1);
        for _ in 0..50 {
            assert_eq!(sampler.sample(&mut r), 5);
        }
    }

    #[test]
    fn sampler_uniform_covers_all_outcomes() {
        let mut s = State::zero(3);
        for q in 0..3 {
            s.apply_1q(q, &gates::h());
        }
        let sampler = Sampler::new(&s);
        let mut r = rng(42);
        let shots = sampler.sample_many(&mut r, 4000);
        let mut counts = [0u32; 8];
        for &x in &shots {
            counts[x as usize] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64 - 500.0).abs() < 120.0,
                "outcome {i} count {c} too far from 500"
            );
        }
    }

    #[test]
    fn sampler_never_emits_zero_probability_outcome() {
        let mut s = State::zero(2);
        s.apply_1q(0, &gates::h());
        s.apply_controlled_1q(&[0], 1, &gates::x());
        let sampler = Sampler::new(&s);
        let mut r = rng(9);
        for _ in 0..2000 {
            let x = sampler.sample(&mut r);
            assert!(x == 0b00 || x == 0b11, "impossible outcome {x:#04b}");
        }
    }

    #[test]
    fn sample_variable_projects_register() {
        // Bell pair: variable on qubit 1 must equal variable on qubit 0.
        let mut s = State::zero(2);
        s.apply_1q(0, &gates::h());
        s.apply_controlled_1q(&[0], 1, &gates::x());
        let sampler = Sampler::new(&s);
        let mut r = rng(3);
        for _ in 0..200 {
            let full = sampler.sample(&mut r);
            assert_eq!(
                extract_bits(full, &[0]),
                extract_bits(full, &[1]),
                "Bell pair outcomes must agree"
            );
        }
    }

    #[test]
    fn measure_qubit_collapses() {
        let mut r = rng(11);
        for _ in 0..20 {
            let mut s = State::zero(2);
            s.apply_1q(0, &gates::h());
            s.apply_controlled_1q(&[0], 1, &gates::x());
            let bit = s.measure_qubit(0, &mut r);
            // After collapse, both qubits agree deterministically.
            let expected = if bit == 1 { 0b11 } else { 0b00 };
            assert!((s.probability(expected) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn measure_statistics_are_fair() {
        let mut r = rng(5);
        let mut ones = 0;
        for _ in 0..1000 {
            let mut s = State::zero(1);
            s.apply_1q(0, &gates::h());
            ones += u32::from(s.measure_qubit(0, &mut r));
        }
        assert!((ones as f64 - 500.0).abs() < 80.0, "ones = {ones}");
    }

    #[test]
    fn project_qubit_post_selects() {
        let mut s = State::zero(2);
        s.apply_1q(0, &gates::h());
        s.apply_controlled_1q(&[0], 1, &gates::x());
        s.project_qubit(0, 1);
        assert!((s.probability(0b11) - 1.0).abs() < 1e-12);
        assert!((s.norm_sqr() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "zero-probability")]
    fn project_impossible_branch_panics() {
        let mut s = State::zero(1);
        s.project_qubit(0, 1);
    }

    #[test]
    fn measure_and_reset_returns_outcome_and_clears() {
        let mut r = rng(17);
        for _ in 0..20 {
            let mut s = State::zero(2);
            s.apply_1q(0, &gates::h());
            s.apply_controlled_1q(&[0], 1, &gates::x());
            let bit = s.measure_and_reset_qubit(0, &mut r);
            // Qubit 0 is reset; qubit 1 still carries the outcome.
            assert!(s.prob_one(0) < 1e-12);
            assert!((s.prob_one(1) - f64::from(bit)).abs() < 1e-12);
        }
    }

    #[test]
    fn sample_once_matches_sampler_bit_for_bit() {
        // States covering zero-probability bins, basis states, and
        // dense superpositions.
        let mut dense = State::zero(4);
        for q in 0..4 {
            dense.apply_1q(q, &gates::h());
            dense.apply_1q(q, &gates::t());
        }
        let mut bell = State::zero(2);
        bell.apply_1q(0, &gates::h());
        bell.apply_controlled_1q(&[0], 1, &gates::x());
        for (name, state) in [
            ("dense", &dense),
            ("bell", &bell),
            ("basis", &State::basis(3, 5).unwrap()),
        ] {
            let sampler = Sampler::new(state);
            let mut a = rng(99);
            let mut b = rng(99);
            for shot in 0..512 {
                assert_eq!(
                    Sampler::sample_once(state, &mut a),
                    sampler.sample(&mut b),
                    "{name} diverged at shot {shot}"
                );
            }
        }
    }

    #[test]
    fn sample_at_reproduces_sample_stream() {
        let mut s = State::zero(4);
        for q in 0..4 {
            s.apply_1q(q, &gates::h());
        }
        let sampler = Sampler::new(&s);
        let direct = sampler.sample_many(&mut rng(77), 128);
        // Pre-draw the uniforms, then map them through sample_at.
        let mut r = rng(77);
        let us: Vec<f64> = (0..128).map(|_| r.gen::<f64>()).collect();
        let replayed: Vec<u64> = us.into_iter().map(|u| sampler.sample_at(u)).collect();
        assert_eq!(direct, replayed);
    }

    #[test]
    fn seeded_sampling_is_reproducible() {
        let mut s = State::zero(4);
        for q in 0..4 {
            s.apply_1q(q, &gates::h());
        }
        let sampler = Sampler::new(&s);
        let a = sampler.sample_many(&mut rng(123), 64);
        let b = sampler.sample_many(&mut rng(123), 64);
        assert_eq!(a, b);
    }
}
