//! Reduced density matrices, purity, and entanglement entropy.
//!
//! The paper's entanglement and product-state assertions are *statistical*
//! decisions made from measurement ensembles. This module provides the
//! corresponding *exact* quantities computed directly from amplitudes —
//! the reduced density matrix of a subsystem, its purity
//! `Tr ρ²` (1 ⇔ product state), and its von Neumann entropy (0 ⇔ product
//! state, `ln 2` per maximally entangled qubit pair). QDB uses these to
//! cross-validate every statistical verdict, playing the role the paper's
//! cross-language validation (LIQUi|>, ProjectQ, Q#) played.

// Index-based loops mirror the textbook matrix formulas here;
// iterator rewrites obscure the i/j/k symmetry the math relies on.
#![allow(clippy::needless_range_loop)]

use crate::complex::Complex;
use crate::error::SimError;
use crate::linalg::{hermitian_eigen, CMatrix};
use crate::state::State;

/// Compute the reduced density matrix of the subsystem spanned by `keep`
/// (ordered; `keep[0]` is the least significant bit of the row/column
/// index), tracing out every other qubit.
///
/// # Errors
///
/// * [`SimError::QubitOutOfRange`] for a bad qubit index;
/// * [`SimError::DuplicateQubit`] if a qubit repeats;
/// * [`SimError::TooManyQubits`] if `keep` has more than 12 qubits (the
///   dense `4^k` output would be enormous).
pub fn reduced_density_matrix(state: &State, keep: &[usize]) -> Result<CMatrix, SimError> {
    let n = state.num_qubits();
    if keep.len() > 12 {
        return Err(SimError::TooManyQubits(keep.len()));
    }
    let mut seen = 0usize;
    for &q in keep {
        if q >= n {
            return Err(SimError::QubitOutOfRange {
                qubit: q,
                num_qubits: n,
            });
        }
        if seen & (1 << q) != 0 {
            return Err(SimError::DuplicateQubit(q));
        }
        seen |= 1 << q;
    }
    let k = keep.len();
    let sub_dim = 1usize << k;
    let rest_positions: Vec<usize> = (0..n).filter(|q| seen & (1 << q) == 0).collect();
    let rest_dim = 1usize << rest_positions.len();

    // offsets for subsystem indices and environment indices
    let sub_offset = |s: usize| -> usize {
        let mut bits = 0usize;
        for (pos, &q) in keep.iter().enumerate() {
            if s & (1 << pos) != 0 {
                bits |= 1 << q;
            }
        }
        bits
    };
    let rest_offset = |r: usize| -> usize {
        let mut bits = 0usize;
        for (pos, &q) in rest_positions.iter().enumerate() {
            if r & (1 << pos) != 0 {
                bits |= 1 << q;
            }
        }
        bits
    };

    let sub_offsets: Vec<usize> = (0..sub_dim).map(sub_offset).collect();
    let mut rho = vec![vec![Complex::ZERO; sub_dim]; sub_dim];
    for r in 0..rest_dim {
        let base = rest_offset(r);
        for i in 0..sub_dim {
            let ai = state.amplitude(base | sub_offsets[i]);
            if ai == Complex::ZERO {
                continue;
            }
            for j in 0..sub_dim {
                let aj = state.amplitude(base | sub_offsets[j]);
                rho[i][j] += ai * aj.conj();
            }
        }
    }
    Ok(rho)
}

/// Purity `Tr ρ²` of a density matrix. Equals 1 exactly when the
/// subsystem is in a pure state (i.e. unentangled with its environment)
/// and `1/d` for a maximally mixed `d`-dimensional subsystem.
#[must_use]
pub fn purity(rho: &CMatrix) -> f64 {
    let n = rho.len();
    let mut acc = 0.0;
    for i in 0..n {
        for j in 0..n {
            // (ρ²)_{ii} = Σ_j ρ_{ij} ρ_{ji}; for Hermitian ρ this is
            // Σ_j |ρ_{ij}|².
            acc += (rho[i][j] * rho[j][i]).re;
        }
    }
    acc
}

/// Von Neumann entropy `S(ρ) = −Tr ρ ln ρ` in nats.
///
/// Zero for product states; `ln 2` for one maximally entangled qubit.
///
/// # Errors
///
/// Propagates eigensolver errors for malformed input.
pub fn von_neumann_entropy(rho: &CMatrix) -> Result<f64, SimError> {
    let eig = hermitian_eigen(rho)?;
    Ok(eig
        .values
        .iter()
        .filter(|&&l| l > 1e-12)
        .map(|&l| -l * l.ln())
        .sum())
}

/// `true` when the subsystem `part` of `state` is (within `tol`) in a
/// product state with the rest of the system — the exact analogue of the
/// paper's `assert_product`.
///
/// # Errors
///
/// See [`reduced_density_matrix`].
pub fn is_product(state: &State, part: &[usize], tol: f64) -> Result<bool, SimError> {
    let rho = reduced_density_matrix(state, part)?;
    Ok((purity(&rho) - 1.0).abs() <= tol)
}

/// `true` when the subsystem `part` is entangled with the rest of the
/// system (purity measurably below 1) — the exact analogue of the paper's
/// `assert_entangled`.
///
/// # Errors
///
/// See [`reduced_density_matrix`].
pub fn is_entangled(state: &State, part: &[usize], tol: f64) -> Result<bool, SimError> {
    Ok(!is_product(state, part, tol)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gates;

    fn bell() -> State {
        let mut s = State::zero(2);
        s.apply_1q(0, &gates::h());
        s.apply_controlled_1q(&[0], 1, &gates::x());
        s
    }

    #[test]
    fn basis_state_subsystem_is_pure() {
        let s = State::basis(3, 0b101).unwrap();
        let rho = reduced_density_matrix(&s, &[0]).unwrap();
        assert!((purity(&rho) - 1.0).abs() < 1e-12);
        assert!(rho[1][1].approx_eq(Complex::ONE, 1e-12)); // qubit 0 is |1⟩
        assert!(is_product(&s, &[0], 1e-9).unwrap());
    }

    #[test]
    fn bell_halves_are_maximally_mixed() {
        let s = bell();
        for q in 0..2 {
            let rho = reduced_density_matrix(&s, &[q]).unwrap();
            assert!(rho[0][0].approx_eq(Complex::real(0.5), 1e-12));
            assert!(rho[1][1].approx_eq(Complex::real(0.5), 1e-12));
            assert!(rho[0][1].approx_eq(Complex::ZERO, 1e-12));
            assert!((purity(&rho) - 0.5).abs() < 1e-12);
        }
        assert!(is_entangled(&s, &[0], 1e-9).unwrap());
    }

    #[test]
    fn bell_entropy_is_ln2() {
        let s = bell();
        let rho = reduced_density_matrix(&s, &[1]).unwrap();
        let ent = von_neumann_entropy(&rho).unwrap();
        assert!((ent - std::f64::consts::LN_2).abs() < 1e-10);
    }

    #[test]
    fn product_state_entropy_zero() {
        let mut s = State::zero(3);
        s.apply_1q(0, &gates::h());
        s.apply_1q(2, &gates::x());
        let rho = reduced_density_matrix(&s, &[0]).unwrap();
        assert!(von_neumann_entropy(&rho).unwrap().abs() < 1e-10);
        assert!(is_product(&s, &[0], 1e-9).unwrap());
        assert!(is_product(&s, &[0, 1], 1e-9).unwrap());
    }

    #[test]
    fn reduced_density_matrix_trace_is_one() {
        let mut s = State::zero(4);
        for q in 0..4 {
            s.apply_1q(q, &gates::h());
            s.apply_1q(q, &gates::t());
        }
        s.apply_controlled_1q(&[0], 2, &gates::x());
        s.apply_controlled_1q(&[1], 3, &gates::ry(0.9));
        for keep in [vec![0], vec![1, 2], vec![0, 2, 3]] {
            let rho = reduced_density_matrix(&s, &keep).unwrap();
            let trace: f64 = (0..rho.len()).map(|i| rho[i][i].re).sum();
            assert!((trace - 1.0).abs() < 1e-10, "keep {keep:?}");
        }
    }

    #[test]
    fn ghz_pairwise_structure() {
        // GHZ: every single qubit is maximally mixed, every 2-qubit
        // subsystem has purity 1/2 (classically correlated).
        let mut s = State::zero(3);
        s.apply_1q(0, &gates::h());
        s.apply_controlled_1q(&[0], 1, &gates::x());
        s.apply_controlled_1q(&[0], 2, &gates::x());
        let rho1 = reduced_density_matrix(&s, &[1]).unwrap();
        assert!((purity(&rho1) - 0.5).abs() < 1e-12);
        let rho12 = reduced_density_matrix(&s, &[1, 2]).unwrap();
        assert!((purity(&rho12) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn keep_order_defines_bit_order() {
        // Qubit 2 = |1⟩, qubit 0 = |0⟩. keep [2, 0]: sub-index bit 0 is
        // qubit 2 → state |01⟩ (sub-index 1).
        let s = State::basis(3, 0b100).unwrap();
        let rho = reduced_density_matrix(&s, &[2, 0]).unwrap();
        assert!(rho[1][1].approx_eq(Complex::ONE, 1e-12));
        let rho_rev = reduced_density_matrix(&s, &[0, 2]).unwrap();
        assert!(rho_rev[2][2].approx_eq(Complex::ONE, 1e-12));
    }

    #[test]
    fn validation_errors() {
        let s = State::zero(2);
        assert!(matches!(
            reduced_density_matrix(&s, &[5]),
            Err(SimError::QubitOutOfRange { .. })
        ));
        assert!(matches!(
            reduced_density_matrix(&s, &[0, 0]),
            Err(SimError::DuplicateQubit(0))
        ));
    }

    #[test]
    fn partially_entangled_state_detected() {
        // cos θ|00⟩ + sin θ|11⟩ with small θ: entangled but close to
        // product; exact check must still flag it.
        let mut s = State::zero(2);
        s.apply_1q(0, &gates::ry(0.3));
        s.apply_controlled_1q(&[0], 1, &gates::x());
        assert!(is_entangled(&s, &[0], 1e-6).unwrap());
        let rho = reduced_density_matrix(&s, &[0]).unwrap();
        assert!(purity(&rho) < 1.0 - 1e-3);
    }
}
