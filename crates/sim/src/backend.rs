//! The simulator backend abstraction.
//!
//! Everything above `qdb-sim` — the lowering layer in `qdb-circuit`, the
//! sweep/ensemble engines in `qdb-core` — used to be hard-wired to the
//! dense [`State`] vector, capping every workflow at
//! [`MAX_QUBITS`](crate::state::MAX_QUBITS) qubits. This module factors
//! the contract those layers actually rely on into the [`SimBackend`]
//! trait so specialized engines can slot in underneath an unchanged
//! programming model:
//!
//! * [`StatevectorBackend`] (= [`State`]) — the dense reference engine;
//!   exact for arbitrary circuits, exponential in qubit count.
//! * [`StabilizerState`](crate::stabilizer::StabilizerState) — an
//!   Aaronson–Gottesman tableau engine; polynomial in qubit count but
//!   restricted to Clifford circuits.
//!
//! The unit of work is a [`SimOp`]: one lowered gate, carrying both its
//! dense kernel form (what the statevector backend executes) and — when
//! the source instruction is a recognized Clifford gate — its
//! [`CliffordOp`] form (what the tableau backend executes). Lowering
//! (and therefore Clifford *classification*) happens once per compiled
//! circuit in `qdb-circuit`; backends never parse matrices.
//!
//! ## Determinism
//!
//! Every probabilistic entry point takes a caller-seeded RNG and draws
//! from it in a documented order, so any two runs given the same seeds
//! agree bit for bit *within* a backend. Across backends only the
//! *distributions* agree: each backend consumes randomness its own way.

use std::collections::HashMap;

use rand::Rng;

use crate::complex::Complex;
use crate::error::SimError;
use crate::gates::Matrix2;
use crate::measure::{extract_bits, Sampler};
use crate::pack::StatePack;
use crate::state::{Pauli, State};

/// A single-qubit Clifford gate the stabilizer backend understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CliffordGate1 {
    /// Hadamard.
    H,
    /// Phase gate `S = diag(1, i)`.
    S,
    /// `S†`.
    Sdg,
    /// Pauli-X.
    X,
    /// Pauli-Y.
    Y,
    /// Pauli-Z.
    Z,
}

/// A backend-neutral Clifford operation.
///
/// This is the instruction set of the tableau backend: the single-qubit
/// Cliffords, the controlled Paulis, and the qubit swap. Anything else
/// (T gates, rotations, multiply-controlled gates) is not Clifford and
/// has no representation here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CliffordOp {
    /// An uncontrolled single-qubit Clifford on `target`.
    Gate1 {
        /// Which gate.
        gate: CliffordGate1,
        /// Target qubit.
        target: usize,
    },
    /// Controlled-X (CNOT).
    Cx {
        /// Control qubit.
        control: usize,
        /// Target qubit.
        target: usize,
    },
    /// Controlled-Y.
    Cy {
        /// Control qubit.
        control: usize,
        /// Target qubit.
        target: usize,
    },
    /// Controlled-Z.
    Cz {
        /// Control qubit.
        control: usize,
        /// Target qubit.
        target: usize,
    },
    /// Swap two qubits.
    Swap {
        /// First qubit.
        a: usize,
        /// Second qubit.
        b: usize,
    },
}

/// The dense kernel form of a lowered gate — which specialized
/// [`kernels`](crate::kernels) entry point the statevector backend
/// dispatches to, with the precomputed matrix data.
#[derive(Debug, Clone, PartialEq)]
pub enum KernelOp {
    /// `diag(d0, d1)` — two scalar multiplies per pair.
    Diagonal {
        /// Top-left entry.
        d0: Complex,
        /// Bottom-right entry.
        d1: Complex,
    },
    /// Anti-diagonal — amplitude permutation with per-branch phases.
    AntiDiagonal {
        /// Top-right entry.
        a01: Complex,
        /// Bottom-left entry.
        a10: Complex,
    },
    /// Dense 2×2 on the control-satisfying subspace.
    General(Matrix2),
    /// (Controlled) swap with the second swapped qubit.
    Swap {
        /// The qubit swapped with the op's target.
        other: usize,
    },
}

/// One lowered simulator operation: control wiring, target, the dense
/// kernel form, and — when the source instruction is a recognized
/// Clifford gate — the [`CliffordOp`] the tableau backend executes.
///
/// Built by the lowering layer in `qdb-circuit`
/// (`CompiledCircuit::compile`); consumed by [`SimBackend::apply_op`].
#[derive(Debug, Clone, PartialEq)]
pub struct SimOp {
    controls: Vec<usize>,
    target: usize,
    kernel: KernelOp,
    clifford: Option<CliffordOp>,
}

impl SimOp {
    /// Lower a (controlled) gate into its kernel form. The Clifford
    /// classification is attached separately with
    /// [`SimOp::with_clifford`] because it derives from the source IR,
    /// not from the matrix.
    #[must_use]
    pub fn new(controls: Vec<usize>, target: usize, kernel: KernelOp) -> Self {
        Self {
            controls,
            target,
            kernel,
            clifford: None,
        }
    }

    /// Attach the Clifford classification of the source instruction.
    #[must_use]
    pub fn with_clifford(mut self, clifford: Option<CliffordOp>) -> Self {
        self.clifford = clifford;
        self
    }

    /// Control qubits in source order.
    #[must_use]
    pub fn controls(&self) -> &[usize] {
        &self.controls
    }

    /// Target qubit (for swaps: the first swapped qubit).
    #[must_use]
    pub fn target(&self) -> usize {
        self.target
    }

    /// The dense kernel form.
    #[must_use]
    pub fn kernel(&self) -> &KernelOp {
        &self.kernel
    }

    /// The Clifford form, when the source instruction is one of the
    /// gates in [`CliffordOp`]'s instruction set.
    #[must_use]
    pub fn clifford(&self) -> Option<&CliffordOp> {
        self.clifford.as_ref()
    }

    /// Visit every qubit this op touches, in the source instruction's
    /// order (controls first) — the qubit sequence noisy replay walks.
    pub fn for_each_qubit(&self, mut f: impl FnMut(usize)) {
        for &c in &self.controls {
            f(c);
        }
        f(self.target);
        if let KernelOp::Swap { other } = &self.kernel {
            f(*other);
        }
    }
}

/// The contract every simulation engine offers the ensemble machinery:
/// construction from `|0…0⟩`, application of lowered ops, marginal
/// measurement probabilities, seeded collapse, one-shot sampling, and
/// exact outcome distributions over qubit subsets.
///
/// Implementations: [`State`] (dense statevector, exact and universal,
/// ≤ [`MAX_QUBITS`](crate::state::MAX_QUBITS) qubits) and
/// [`StabilizerState`](crate::stabilizer::StabilizerState) (tableau,
/// Clifford-only, hundreds of qubits).
pub trait SimBackend: Sized + Clone + Send + Sync {
    /// Human-readable engine name (for error messages and reports).
    const NAME: &'static str;

    /// The all-zeros state `|0…0⟩` on `num_qubits` qubits.
    ///
    /// # Errors
    ///
    /// * [`SimError::InvalidDimension`] when `num_qubits == 0`;
    /// * [`SimError::TooManyQubits`] beyond the backend's capacity.
    fn zero(num_qubits: usize) -> Result<Self, SimError>;

    /// The all-zeros state `|0…0⟩`, with the backing buffer allocated
    /// *fallibly*: an allocation the system cannot satisfy returns
    /// [`SimError::AllocationFailed`] instead of aborting the process.
    ///
    /// The default delegates to [`zero`](SimBackend::zero), which is
    /// correct for backends whose construction cost is trivially small
    /// (tableau rows, a one-entry support map); the dense statevector
    /// overrides it with a `try_reserve`-based path so a near-ceiling
    /// `2ⁿ` request degrades into a typed error the execution governor
    /// can turn into a partial report. Successful construction is
    /// bit-for-bit [`zero`](SimBackend::zero).
    ///
    /// # Errors
    ///
    /// As [`zero`](SimBackend::zero), plus
    /// [`SimError::AllocationFailed`] when the buffer cannot be
    /// allocated.
    fn try_zero_state(num_qubits: usize) -> Result<Self, SimError> {
        Self::zero(num_qubits)
    }

    /// Bytes of memory this state currently holds resident (buffers
    /// plus header). The execution governor polls this against its
    /// `max_resident_bytes` budget; an estimate is fine as long as it
    /// tracks the dominant buffer, so the default — the struct header
    /// alone — is only acceptable for backends with no heap state.
    fn resident_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
    }

    /// Number of qubits.
    fn num_qubits(&self) -> usize;

    /// `true` when [`apply_op`](SimBackend::apply_op) can execute `op`.
    ///
    /// The statevector backend supports everything; the tableau backend
    /// supports exactly the ops carrying a [`CliffordOp`]
    /// classification.
    fn supports_op(&self, op: &SimOp) -> bool;

    /// Overwrite `self` with an exact copy of `source`, reusing
    /// `self`'s allocations where possible.
    ///
    /// Semantically identical to `*self = source.clone()` (and that is
    /// the default implementation) — bit-for-bit, including any
    /// instrumentation counters — but backends override it to recycle
    /// their buffers: forking a trajectory from a checkpoint through a
    /// [`StatePool`](crate::pool::StatePool) then costs one `memcpy`,
    /// not an allocation. `self` need not match `source`'s qubit count;
    /// after the call it is a copy of `source` regardless.
    fn copy_from(&mut self, source: &Self) {
        *self = source.clone();
    }

    /// Rebuild `sampler` as a prepared full-register distribution over
    /// `self`, returning `true` when the backend supports it.
    ///
    /// A caller drawing **many** shots from one state pays the CDF
    /// construction once and each shot becomes a binary search —
    /// bit-identical to per-shot [`sample_once`](SimBackend::sample_once)
    /// on the statevector backend (see
    /// [`Sampler::sample_once`](crate::Sampler::sample_once) for the
    /// contract), with the caller owning the buffer so one allocation
    /// serves a whole session. The default returns `false` (no dense
    /// CDF exists — the tableau backend's outcome space is exponential
    /// only in the *measured* qubits, not materializable per state), in
    /// which case callers fall back to per-shot sampling.
    fn rebuild_shot_sampler(&self, sampler: &mut Sampler) -> bool {
        let _ = sampler;
        false
    }

    /// Opt this state in to (or out of) amplitude-parallel kernels.
    ///
    /// A *policy* switch, not a semantic one: backends with chunked
    /// kernels (the dense statevector) produce bit-identical results at
    /// any thread count and merely spread the work; backends without
    /// them ignore the call entirely (the default is a no-op). Callers
    /// that fan out *across* states must leave the fanned-out states
    /// opted out so parallelism never nests.
    fn set_intra_parallel(&mut self, enabled: bool) {
        let _ = enabled;
    }

    /// Whether amplitude-parallel kernels are enabled for this state.
    /// Backends without chunked kernels always report `false`.
    fn intra_parallel(&self) -> bool {
        false
    }

    /// Broadcast this state into a `width`-lane
    /// [`StatePack`] for packed suffix replay,
    /// or `None` when the backend has no packed form (the default —
    /// only the dense statevector packs, so tableau and sparse
    /// trajectories fall back to per-fork replay).
    fn pack_broadcast(&self, width: usize) -> Option<StatePack> {
        let _ = width;
        None
    }

    /// Re-broadcast this state into an existing pack buffer (recycling
    /// its allocation), returning `false` when the backend has no
    /// packed form.
    fn pack_broadcast_into(&self, pack: &mut StatePack, width: usize) -> bool {
        let _ = (pack, width);
        false
    }

    /// Overwrite `self` with lane `k` of `pack`, returning `false` when
    /// the backend has no packed form. `self` must already have the
    /// pack's qubit count (it comes out of the same pool the pack's
    /// checkpoint went in).
    fn pack_extract_into(&mut self, pack: &StatePack, k: usize) -> bool {
        let _ = (pack, k);
        false
    }

    /// Apply one lowered op.
    ///
    /// # Panics
    ///
    /// Panics if the op is unsupported (see
    /// [`supports_op`](SimBackend::supports_op)) or touches a qubit out
    /// of range.
    fn apply_op(&mut self, op: &SimOp);

    /// Apply a single-qubit Pauli (the *Pauli* noise-channel primitive:
    /// Pauli conjugation is Clifford, so stochastic-Pauli trajectories
    /// replay on any backend).
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    fn apply_pauli(&mut self, q: usize, p: Pauli);

    /// `true` when this backend can unravel general Kraus channels via
    /// [`apply_kraus`](SimBackend::apply_kraus). Only the dense
    /// statevector engine can: branch norms `‖Kᵢ|ψ⟩‖²` need amplitude
    /// access, which tableau and support-map representations don't
    /// offer. The runner consults this at resolution time so an
    /// unsupported pairing fails with a typed error instead of reaching
    /// the panicking default.
    fn supports_kraus() -> bool {
        false
    }

    /// Unravel one Kraus-channel site on qubit `q`: compute the branch
    /// norms `pᵢ = ‖Kᵢ|ψ⟩‖²`, draw branch `i` with probability `pᵢ`
    /// (exactly **one** uniform from `rng`, drawn before any state
    /// work; zero draws for a single-operator set), apply `Kᵢ/√pᵢ`,
    /// and return the chosen branch index.
    ///
    /// # Panics
    ///
    /// The default panics: backends that report
    /// [`supports_kraus`](SimBackend::supports_kraus)` == false` have
    /// no dense amplitudes to compute branch norms from.
    fn apply_kraus<R: Rng + ?Sized>(&mut self, q: usize, ops: &[Matrix2], rng: &mut R) -> usize {
        let _ = (q, ops, rng);
        panic!(
            "the {} backend cannot unravel Kraus channels (no amplitude \
             access for branch norms); route Kraus noise to the dense backend",
            Self::NAME
        );
    }

    /// Marginal probability that qubit `q` measures `1`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    fn prob_one(&self, q: usize) -> f64;

    /// Measure qubit `q` in the computational basis, collapsing the
    /// state; the caller seeds the RNG (seeded collapse).
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    fn measure_qubit<R: Rng + ?Sized>(&mut self, q: usize, rng: &mut R) -> u8;

    /// Draw one joint measurement outcome of the listed qubits without
    /// disturbing `self`, packing the observed bit of `qubits[i]` into
    /// bit `i` of the result.
    ///
    /// The default implementation measures the qubits in order on a
    /// working copy; the joint distribution is the Born rule marginal
    /// on `qubits` (commuting Z measurements, so the order does not
    /// affect the distribution).
    ///
    /// # Panics
    ///
    /// Panics if a qubit is out of range or `qubits.len() > 64`.
    fn sample_once<R: Rng + ?Sized>(&self, qubits: &[usize], rng: &mut R) -> u64 {
        assert!(qubits.len() <= 64, "cannot pack more than 64 qubits");
        let mut copy = self.clone();
        let mut out = 0u64;
        for (pos, &q) in qubits.iter().enumerate() {
            out |= u64::from(copy.measure_qubit(q, rng)) << pos;
        }
        out
    }

    /// The exact joint Born distribution of the listed qubits, keyed by
    /// the packed outcome (bit `i` ← qubit `qubits[i]`). Outcomes with
    /// zero probability are omitted.
    ///
    /// This is the *measurement probabilities* entry point behind the
    /// exact assertion cross-check: the statevector backend scans its
    /// `2ⁿ` amplitudes; the tableau backend enumerates the (at most
    /// `2^|qubits|`) branches of its affine outcome space in polynomial
    /// time per branch.
    ///
    /// # Panics
    ///
    /// Panics if a qubit is out of range or `qubits.len() > 64`.
    fn outcome_distribution(&self, qubits: &[usize]) -> HashMap<u64, f64>;
}

/// The dense statevector engine is [`State`] itself: exact for
/// arbitrary circuits, `O(2ⁿ)` memory, the reference semantics every
/// other backend is validated against.
pub type StatevectorBackend = State;

impl SimBackend for State {
    const NAME: &'static str = "statevector";

    fn zero(num_qubits: usize) -> Result<Self, SimError> {
        State::basis(num_qubits, 0)
    }

    fn try_zero_state(num_qubits: usize) -> Result<Self, SimError> {
        State::try_zero_state(num_qubits)
    }

    fn resident_bytes(&self) -> usize {
        State::resident_bytes(self)
    }

    fn num_qubits(&self) -> usize {
        State::num_qubits(self)
    }

    fn supports_op(&self, _op: &SimOp) -> bool {
        true
    }

    fn copy_from(&mut self, source: &Self) {
        State::copy_from(self, source);
    }

    fn rebuild_shot_sampler(&self, sampler: &mut Sampler) -> bool {
        sampler.rebuild(self);
        true
    }

    fn set_intra_parallel(&mut self, enabled: bool) {
        State::set_intra_parallel(self, enabled);
    }

    fn intra_parallel(&self) -> bool {
        State::intra_parallel(self)
    }

    fn pack_broadcast(&self, width: usize) -> Option<StatePack> {
        Some(StatePack::broadcast(self, width))
    }

    fn pack_broadcast_into(&self, pack: &mut StatePack, width: usize) -> bool {
        pack.broadcast_into(self, width);
        true
    }

    fn pack_extract_into(&mut self, pack: &StatePack, k: usize) -> bool {
        pack.extract_lane_into(k, self);
        true
    }

    fn apply_op(&mut self, op: &SimOp) {
        match &op.kernel {
            KernelOp::Diagonal { d0, d1 } => {
                self.apply_diagonal(&op.controls, op.target, *d0, *d1);
            }
            KernelOp::AntiDiagonal { a01, a10 } => {
                self.apply_antidiagonal(&op.controls, op.target, *a01, *a10);
            }
            KernelOp::General(m) => self.apply_1q_subspace(&op.controls, op.target, m),
            KernelOp::Swap { other } => self.apply_swap_subspace(&op.controls, op.target, *other),
        }
    }

    fn apply_pauli(&mut self, q: usize, p: Pauli) {
        if p != Pauli::I {
            self.apply_1q(q, &p.matrix());
        }
    }

    fn supports_kraus() -> bool {
        true
    }

    fn apply_kraus<R: Rng + ?Sized>(&mut self, q: usize, ops: &[Matrix2], rng: &mut R) -> usize {
        State::apply_kraus(self, q, ops, rng)
    }

    fn prob_one(&self, q: usize) -> f64 {
        State::prob_one(self, q)
    }

    fn measure_qubit<R: Rng + ?Sized>(&mut self, q: usize, rng: &mut R) -> u8 {
        State::measure_qubit(self, q, rng)
    }

    fn sample_once<R: Rng + ?Sized>(&self, qubits: &[usize], rng: &mut R) -> u64 {
        // One CDF inversion instead of sequential per-qubit collapse:
        // same distribution, and it reuses the battle-tested sampler.
        assert!(qubits.len() <= 64, "cannot pack more than 64 qubits");
        extract_bits(Sampler::sample_once(self, rng), qubits)
    }

    fn outcome_distribution(&self, qubits: &[usize]) -> HashMap<u64, f64> {
        assert!(qubits.len() <= 64, "cannot pack more than 64 qubits");
        for &q in qubits {
            self.check_qubit(q);
        }
        let mut dist: HashMap<u64, f64> = HashMap::new();
        for i in 0..self.dim() {
            let p = self.probability(i);
            if p > 0.0 {
                *dist.entry(extract_bits(i as u64, qubits)).or_insert(0.0) += p;
            }
        }
        dist
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gates;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn bell() -> State {
        let mut s = State::zero(2);
        s.apply_1q(0, &gates::h());
        s.apply_controlled_1q(&[0], 1, &gates::x());
        s
    }

    #[test]
    fn state_apply_op_matches_kernel_entry_points() {
        let op = SimOp::new(
            vec![0],
            1,
            KernelOp::AntiDiagonal {
                a01: Complex::ONE,
                a10: Complex::ONE,
            },
        )
        .with_clifford(Some(CliffordOp::Cx {
            control: 0,
            target: 1,
        }));
        let mut via_trait = State::zero(2);
        via_trait.apply_1q(0, &gates::h());
        via_trait.apply_op(&op);
        assert_eq!(via_trait, bell());
        assert!(via_trait.supports_op(&op));
        assert_eq!(
            op.clifford(),
            Some(&CliffordOp::Cx {
                control: 0,
                target: 1
            })
        );
    }

    #[test]
    fn sim_op_visits_qubits_in_source_order() {
        let op = SimOp::new(vec![3, 1], 0, KernelOp::Swap { other: 2 });
        let mut seen = Vec::new();
        op.for_each_qubit(|q| seen.push(q));
        assert_eq!(seen, vec![3, 1, 0, 2]);
    }

    #[test]
    fn outcome_distribution_matches_probabilities() {
        let s = bell();
        let full = s.outcome_distribution(&[0, 1]);
        assert_eq!(full.len(), 2);
        assert!((full[&0b00] - 0.5).abs() < 1e-12);
        assert!((full[&0b11] - 0.5).abs() < 1e-12);
        // Marginal of one qubit: uniform.
        let marginal = s.outcome_distribution(&[1]);
        assert!((marginal[&0] - 0.5).abs() < 1e-12);
        assert!((marginal[&1] - 0.5).abs() < 1e-12);
        // Qubit order controls bit packing.
        let mut one = State::zero(2);
        one.apply_1q(0, &gates::x());
        let swapped = one.outcome_distribution(&[1, 0]);
        assert!((swapped[&0b10] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sample_once_respects_support_and_packing() {
        let s = bell();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..200 {
            let o = SimBackend::sample_once(&s, &[0, 1], &mut rng);
            assert!(o == 0b00 || o == 0b11, "impossible outcome {o:#b}");
        }
    }

    #[test]
    fn trait_zero_matches_basis_and_guards() {
        let z = <State as SimBackend>::zero(3).unwrap();
        assert_eq!(z, State::zero(3));
        assert!(<State as SimBackend>::zero(0).is_err());
    }

    #[test]
    fn apply_pauli_matches_apply_1q() {
        for p in [Pauli::X, Pauli::Y, Pauli::Z] {
            let mut a = bell();
            SimBackend::apply_pauli(&mut a, 1, p);
            let mut b = bell();
            b.apply_1q(1, &p.matrix());
            assert_eq!(a, b);
        }
        // Identity is a no-op (and counts no gate).
        let mut a = bell();
        let ops_before = a.gate_ops();
        SimBackend::apply_pauli(&mut a, 0, Pauli::I);
        assert_eq!(a.gate_ops(), ops_before);
    }
}
