//! Aaronson–Gottesman stabilizer (Clifford tableau) simulation.
//!
//! The dense statevector caps at [`MAX_QUBITS`](crate::state::MAX_QUBITS)
//! = 26 qubits (1 GiB of amplitudes); the circuits the assertion
//! workflow debugs most — GHZ ladders, teleportation chains,
//! error-correcting codes — are pure Clifford and therefore simulable in
//! *polynomial* time and space by tracking the stabilizer group of the
//! state instead of its amplitudes (Aaronson & Gottesman, "Improved
//! simulation of stabilizer circuits", 2004). [`StabilizerState`] is
//! that engine: `O(n²)` bits of tableau, `O(n)` per Clifford gate,
//! `O(n²)` per measurement, good for hundreds of qubits where the dense
//! backend cannot even allocate.
//!
//! ## Representation
//!
//! The tableau holds `2n` Pauli rows over bit-packed X/Z vectors plus a
//! sign bit each: rows `0..n` are destabilizers, rows `n..2n` the
//! stabilizer generators. The initial `|0…0⟩` tableau is
//! `destabᵢ = Xᵢ`, `stabᵢ = Zᵢ`. Gates conjugate every row in `O(n)`
//! (bit-parallel over 64-qubit words); measurement uses the standard
//! random/deterministic split with word-parallel phase accumulation.
//!
//! ## Scope
//!
//! Exactly the [`CliffordOp`] instruction set: H, S, S†, X, Y, Z, CX,
//! CY, CZ, swap. Non-Clifford ops have no tableau representation;
//! [`SimBackend::apply_op`] panics on them, and the ensemble engine in
//! `qdb-core` routes such programs to the statevector backend instead
//! (see its `BackendChoice::Auto` rules).
//!
//! ```
//! use qdb_sim::stabilizer::StabilizerState;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! // A 100-qubit GHZ state — far beyond any dense simulator.
//! let mut s = StabilizerState::zero(100).unwrap();
//! s.h(0);
//! for q in 1..100 {
//!     s.cx(q - 1, q);
//! }
//! assert_eq!(s.prob_one(99), 0.5);
//! let mut rng = StdRng::seed_from_u64(7);
//! let shot = s.sample_qubits(&[0, 99], &mut rng);
//! assert!(shot == 0b00 || shot == 0b11); // ends always agree
//! ```

use std::collections::HashMap;

use rand::Rng;

use crate::backend::{CliffordGate1, CliffordOp, SimBackend, SimOp};
use crate::error::SimError;
use crate::state::Pauli;

/// Hard cap on tableau size: `2n` rows of `2n` bits (X and Z vectors
/// together) ≈ 8 MiB at this bound — generous for every workload while
/// keeping accidental million-qubit allocations impossible.
pub const MAX_STABILIZER_QUBITS: usize = 4096;

/// A stabilizer state of `n` qubits as an Aaronson–Gottesman tableau.
///
/// See the [module docs](self) for representation and scope.
#[derive(Debug, Clone)]
pub struct StabilizerState {
    n: usize,
    /// Words per row (`⌈n / 64⌉`).
    words: usize,
    /// X bit-vectors, row-major: `2n` rows of `words` words.
    xs: Vec<u64>,
    /// Z bit-vectors, same layout.
    zs: Vec<u64>,
    /// Sign bit per row: the row's Pauli carries `(−1)^phase`.
    phase: Vec<bool>,
    gate_ops: u64,
}

impl StabilizerState {
    /// The all-zeros state `|0…0⟩`.
    ///
    /// # Errors
    ///
    /// * [`SimError::InvalidDimension`] when `num_qubits == 0`;
    /// * [`SimError::TooManyQubits`] beyond [`MAX_STABILIZER_QUBITS`].
    pub fn zero(num_qubits: usize) -> Result<Self, SimError> {
        if num_qubits == 0 {
            return Err(SimError::InvalidDimension(0));
        }
        if num_qubits > MAX_STABILIZER_QUBITS {
            return Err(SimError::TooManyQubits(num_qubits));
        }
        let words = num_qubits.div_ceil(64);
        let mut s = Self {
            n: num_qubits,
            words,
            xs: vec![0; 2 * num_qubits * words],
            zs: vec![0; 2 * num_qubits * words],
            phase: vec![false; 2 * num_qubits],
            gate_ops: 0,
        };
        for i in 0..num_qubits {
            let (w, m) = (i / 64, 1u64 << (i % 64));
            s.xs[i * words + w] |= m; // destabilizer i = Xᵢ
            s.zs[(num_qubits + i) * words + w] |= m; // stabilizer i = Zᵢ
        }
        Ok(s)
    }

    /// Number of qubits.
    #[must_use]
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// Number of Clifford gate applications this state has undergone —
    /// the tableau counterpart of
    /// [`State::gate_ops`](crate::State::gate_ops), used by the scale
    /// benchmarks to demonstrate `O(G)` sweeps.
    #[must_use]
    pub fn gate_ops(&self) -> u64 {
        self.gate_ops
    }

    /// Reset the [`gate_ops`](StabilizerState::gate_ops) counter.
    pub fn reset_gate_ops(&mut self) {
        self.gate_ops = 0;
    }

    fn check_qubit(&self, q: usize) {
        assert!(
            q < self.n,
            "qubit {q} out of range for {}-qubit tableau",
            self.n
        );
    }

    #[inline]
    fn x_bit(&self, row: usize, q: usize) -> bool {
        self.xs[row * self.words + q / 64] & (1u64 << (q % 64)) != 0
    }

    // --- raw (uncounted) conjugations, each O(n) over all 2n rows ---

    /// H on `q`: X ↔ Z per row, sign flip where the row acts as Y.
    fn raw_h(&mut self, q: usize) {
        let (w, m) = (q / 64, 1u64 << (q % 64));
        for row in 0..2 * self.n {
            let xi = row * self.words + w;
            let xb = self.xs[xi] & m != 0;
            let zb = self.zs[xi] & m != 0;
            if xb && zb {
                self.phase[row] = !self.phase[row];
            }
            if xb != zb {
                self.xs[xi] ^= m;
                self.zs[xi] ^= m;
            }
        }
    }

    /// S on `q`: Z ^= X per row, sign flip where the row acts as Y.
    fn raw_s(&mut self, q: usize) {
        let (w, m) = (q / 64, 1u64 << (q % 64));
        for row in 0..2 * self.n {
            let xi = row * self.words + w;
            let xb = self.xs[xi] & m != 0;
            if xb && self.zs[xi] & m != 0 {
                self.phase[row] = !self.phase[row];
            }
            if xb {
                self.zs[xi] ^= m;
            }
        }
    }

    /// Z on `q`: sign flip where the row anticommutes with Z (x = 1).
    fn raw_z(&mut self, q: usize) {
        let (w, m) = (q / 64, 1u64 << (q % 64));
        for row in 0..2 * self.n {
            if self.xs[row * self.words + w] & m != 0 {
                self.phase[row] = !self.phase[row];
            }
        }
    }

    /// X on `q`: sign flip where the row anticommutes with X (z = 1).
    fn raw_x(&mut self, q: usize) {
        let (w, m) = (q / 64, 1u64 << (q % 64));
        for row in 0..2 * self.n {
            if self.zs[row * self.words + w] & m != 0 {
                self.phase[row] = !self.phase[row];
            }
        }
    }

    /// Y on `q`: sign flip where the row acts as X or Z (not Y).
    fn raw_y(&mut self, q: usize) {
        let (w, m) = (q / 64, 1u64 << (q % 64));
        for row in 0..2 * self.n {
            let xi = row * self.words + w;
            if (self.xs[xi] & m != 0) != (self.zs[xi] & m != 0) {
                self.phase[row] = !self.phase[row];
            }
        }
    }

    /// S† = S ∘ Z.
    fn raw_sdg(&mut self, q: usize) {
        self.raw_z(q);
        self.raw_s(q);
    }

    /// CX with control `c`, target `t`.
    fn raw_cx(&mut self, c: usize, t: usize) {
        let (cw, cm) = (c / 64, 1u64 << (c % 64));
        let (tw, tm) = (t / 64, 1u64 << (t % 64));
        for row in 0..2 * self.n {
            let base = row * self.words;
            let xc = self.xs[base + cw] & cm != 0;
            let zc = self.zs[base + cw] & cm != 0;
            let xt = self.xs[base + tw] & tm != 0;
            let zt = self.zs[base + tw] & tm != 0;
            if xc && zt && (xt == zc) {
                self.phase[row] = !self.phase[row];
            }
            if xc {
                self.xs[base + tw] ^= tm;
            }
            if zt {
                self.zs[base + cw] ^= cm;
            }
        }
    }

    /// CZ = H(t) ∘ CX ∘ H(t).
    fn raw_cz(&mut self, c: usize, t: usize) {
        self.raw_h(t);
        self.raw_cx(c, t);
        self.raw_h(t);
    }

    /// CY = S(t) ∘ CX ∘ S†(t).
    fn raw_cy(&mut self, c: usize, t: usize) {
        self.raw_sdg(t);
        self.raw_cx(c, t);
        self.raw_s(t);
    }

    /// Swap = three CNOTs.
    fn raw_swap(&mut self, a: usize, b: usize) {
        self.raw_cx(a, b);
        self.raw_cx(b, a);
        self.raw_cx(a, b);
    }

    // --- public counted gates ---

    /// Hadamard on `q`.
    ///
    /// # Panics
    ///
    /// All gate methods panic on an out-of-range qubit; two-qubit gates
    /// additionally panic when their qubits coincide.
    pub fn h(&mut self, q: usize) {
        self.check_qubit(q);
        self.gate_ops += 1;
        self.raw_h(q);
    }

    /// Phase gate S on `q`.
    pub fn s(&mut self, q: usize) {
        self.check_qubit(q);
        self.gate_ops += 1;
        self.raw_s(q);
    }

    /// S† on `q`.
    pub fn sdg(&mut self, q: usize) {
        self.check_qubit(q);
        self.gate_ops += 1;
        self.raw_sdg(q);
    }

    /// Pauli-X on `q`.
    pub fn x(&mut self, q: usize) {
        self.check_qubit(q);
        self.gate_ops += 1;
        self.raw_x(q);
    }

    /// Pauli-Y on `q`.
    pub fn y(&mut self, q: usize) {
        self.check_qubit(q);
        self.gate_ops += 1;
        self.raw_y(q);
    }

    /// Pauli-Z on `q`.
    pub fn z(&mut self, q: usize) {
        self.check_qubit(q);
        self.gate_ops += 1;
        self.raw_z(q);
    }

    /// CNOT with control `c` and target `t`.
    pub fn cx(&mut self, c: usize, t: usize) {
        self.check_qubit(c);
        self.check_qubit(t);
        assert!(c != t, "control {c} equals target");
        self.gate_ops += 1;
        self.raw_cx(c, t);
    }

    /// Controlled-Y.
    pub fn cy(&mut self, c: usize, t: usize) {
        self.check_qubit(c);
        self.check_qubit(t);
        assert!(c != t, "control {c} equals target");
        self.gate_ops += 1;
        self.raw_cy(c, t);
    }

    /// Controlled-Z.
    pub fn cz(&mut self, c: usize, t: usize) {
        self.check_qubit(c);
        self.check_qubit(t);
        assert!(c != t, "control {c} equals target");
        self.gate_ops += 1;
        self.raw_cz(c, t);
    }

    /// Swap qubits `a` and `b` (`swap(q, q)` is a no-op and counts no
    /// work, matching the dense backend's convention).
    pub fn swap(&mut self, a: usize, b: usize) {
        self.check_qubit(a);
        self.check_qubit(b);
        if a == b {
            return;
        }
        self.gate_ops += 1;
        self.raw_swap(a, b);
    }

    /// Apply one backend-neutral Clifford op (one gate application).
    pub fn apply_clifford(&mut self, op: &CliffordOp) {
        match *op {
            CliffordOp::Gate1 { gate, target } => match gate {
                CliffordGate1::H => self.h(target),
                CliffordGate1::S => self.s(target),
                CliffordGate1::Sdg => self.sdg(target),
                CliffordGate1::X => self.x(target),
                CliffordGate1::Y => self.y(target),
                CliffordGate1::Z => self.z(target),
            },
            CliffordOp::Cx { control, target } => self.cx(control, target),
            CliffordOp::Cy { control, target } => self.cy(control, target),
            CliffordOp::Cz { control, target } => self.cz(control, target),
            CliffordOp::Swap { a, b } => self.swap(a, b),
        }
    }

    // --- measurement ---

    /// Word-parallel phase contribution of adding row carrying
    /// `(x1, z1)` into a row currently carrying `(x2, z2)`: the sum of
    /// the Aaronson–Gottesman `g` function over the word's bit lanes.
    #[inline]
    fn phase_exponent(e: &mut i64, x1: u64, z1: u64, x2: u64, z2: u64) {
        let m_y = x1 & z1; // row-to-add acts as Y on these lanes
        let m_x = x1 & !z1; // … as X
        let m_z = !x1 & z1; // … as Z
        let plus = (m_y & z2 & !x2) | (m_x & x2 & z2) | (m_z & x2 & !z2);
        let minus = (m_y & x2 & !z2) | (m_x & z2 & !x2) | (m_z & x2 & z2);
        *e += i64::from(plus.count_ones()) - i64::from(minus.count_ones());
    }

    /// `row_h *= row_i` (Pauli product with exact sign tracking).
    ///
    /// The exponent is guaranteed real only when the rows commute —
    /// true for every stabilizer-row target (stabilizers commute
    /// pairwise). The one anticommuting case, adding the measurement
    /// pivot into its *paired destabilizer*, picks up an `i` factor;
    /// destabilizer phases are pure bookkeeping that no outcome ever
    /// reads, so (exactly as in Aaronson's chp.c) the stored sign there
    /// is don't-care.
    fn rowsum(&mut self, h: usize, i: usize) {
        let (hb, ib) = (h * self.words, i * self.words);
        let mut e: i64 = 2 * i64::from(self.phase[h]) + 2 * i64::from(self.phase[i]);
        for w in 0..self.words {
            Self::phase_exponent(
                &mut e,
                self.xs[ib + w],
                self.zs[ib + w],
                self.xs[hb + w],
                self.zs[hb + w],
            );
        }
        debug_assert!(
            h < self.n || e.rem_euclid(4) % 2 == 0,
            "rowsum into stabilizer row produced imaginary phase"
        );
        self.phase[h] = e.rem_euclid(4) == 2;
        for w in 0..self.words {
            self.xs[hb + w] ^= self.xs[ib + w];
            self.zs[hb + w] ^= self.zs[ib + w];
        }
    }

    /// The stabilizer row that anticommutes with `Z_q`, if any — its
    /// existence means a `Z_q` measurement is random.
    fn random_pivot(&self, q: usize) -> Option<usize> {
        (self.n..2 * self.n).find(|&row| self.x_bit(row, q))
    }

    /// Collapse a *random* `Z_q` measurement (pivot from
    /// [`random_pivot`](Self::random_pivot)) onto `outcome`.
    fn collapse(&mut self, pivot: usize, q: usize, outcome: bool) {
        for row in 0..2 * self.n {
            if row != pivot && self.x_bit(row, q) {
                self.rowsum(row, pivot);
            }
        }
        // Destabilizer := the old stabilizer; stabilizer := ±Z_q.
        let (db, pb) = ((pivot - self.n) * self.words, pivot * self.words);
        for w in 0..self.words {
            self.xs[db + w] = self.xs[pb + w];
            self.zs[db + w] = self.zs[pb + w];
            self.xs[pb + w] = 0;
            self.zs[pb + w] = 0;
        }
        self.phase[pivot - self.n] = self.phase[pivot];
        self.zs[pb + q / 64] = 1u64 << (q % 64);
        self.phase[pivot] = outcome;
    }

    /// The outcome of a *deterministic* `Z_q` measurement (no stabilizer
    /// anticommutes with `Z_q`): accumulate the product of the
    /// stabilizers flagged by the destabilizers and read its sign.
    fn deterministic_outcome(&self, q: usize) -> bool {
        let mut sx = vec![0u64; self.words];
        let mut sz = vec![0u64; self.words];
        let mut e: i64 = 0;
        for i in 0..self.n {
            if self.x_bit(i, q) {
                let sb = (self.n + i) * self.words;
                e += 2 * i64::from(self.phase[self.n + i]);
                for w in 0..self.words {
                    Self::phase_exponent(&mut e, self.xs[sb + w], self.zs[sb + w], sx[w], sz[w]);
                    sx[w] ^= self.xs[sb + w];
                    sz[w] ^= self.zs[sb + w];
                }
            }
        }
        debug_assert!(e.rem_euclid(4) % 2 == 0, "scratch row has imaginary phase");
        e.rem_euclid(4) == 2
    }

    /// Marginal probability that `q` measures `1` — always exactly
    /// `0.0`, `0.5`, or `1.0` for a stabilizer state.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    #[must_use]
    pub fn prob_one(&self, q: usize) -> f64 {
        self.check_qubit(q);
        match self.random_pivot(q) {
            Some(_) => 0.5,
            None => f64::from(u8::from(self.deterministic_outcome(q))),
        }
    }

    /// Measure qubit `q` in the computational basis, collapsing the
    /// state. A random outcome consumes one uniform draw
    /// (`rng.gen::<f64>() < 0.5`); a deterministic outcome consumes
    /// nothing.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn measure_qubit<R: Rng + ?Sized>(&mut self, q: usize, rng: &mut R) -> u8 {
        self.check_qubit(q);
        match self.random_pivot(q) {
            Some(pivot) => {
                let outcome = rng.gen::<f64>() < 0.5;
                self.collapse(pivot, q, outcome);
                u8::from(outcome)
            }
            None => u8::from(self.deterministic_outcome(q)),
        }
    }

    /// Draw one joint outcome of the listed qubits on a working copy,
    /// packing qubit `qubits[i]` into bit `i` (the trait's
    /// [`sample_once`](SimBackend::sample_once), named for direct use).
    ///
    /// # Panics
    ///
    /// Panics if a qubit is out of range or `qubits.len() > 64`.
    pub fn sample_qubits<R: Rng + ?Sized>(&self, qubits: &[usize], rng: &mut R) -> u64 {
        SimBackend::sample_once(self, qubits, rng)
    }

    /// The exact joint distribution of the listed qubits, by branch
    /// enumeration: deterministic qubits extend the current branch for
    /// free; each random qubit forks it into two half-probability
    /// branches. A stabilizer distribution is uniform over an affine
    /// space, so every reported probability is an exact power of two.
    ///
    /// # Panics
    ///
    /// Panics if a qubit is out of range or `qubits.len() > 64`.
    #[must_use]
    pub fn outcome_distribution(&self, qubits: &[usize]) -> HashMap<u64, f64> {
        assert!(qubits.len() <= 64, "cannot pack more than 64 qubits");
        for &q in qubits {
            self.check_qubit(q);
        }
        let mut dist = HashMap::new();
        let mut branches: Vec<(StabilizerState, usize, u64, f64)> = vec![(self.clone(), 0, 0, 1.0)];
        while let Some((mut state, mut pos, mut packed, mut p)) = branches.pop() {
            loop {
                let Some(&q) = qubits.get(pos) else {
                    *dist.entry(packed).or_insert(0.0) += p;
                    break;
                };
                match state.random_pivot(q) {
                    None => {
                        packed |= u64::from(state.deterministic_outcome(q)) << pos;
                    }
                    Some(pivot) => {
                        p *= 0.5;
                        let mut one = state.clone();
                        one.collapse(pivot, q, true);
                        branches.push((one, pos + 1, packed | (1 << pos), p));
                        state.collapse(pivot, q, false);
                    }
                }
                pos += 1;
            }
        }
        dist
    }
}

impl SimBackend for StabilizerState {
    const NAME: &'static str = "stabilizer";

    fn zero(num_qubits: usize) -> Result<Self, SimError> {
        StabilizerState::zero(num_qubits)
    }

    fn resident_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + (self.xs.capacity() + self.zs.capacity()) * std::mem::size_of::<u64>()
            + self.phase.capacity() * std::mem::size_of::<bool>()
    }

    fn num_qubits(&self) -> usize {
        self.n
    }

    fn supports_op(&self, op: &SimOp) -> bool {
        op.clifford().is_some()
    }

    fn copy_from(&mut self, source: &Self) {
        self.n = source.n;
        self.words = source.words;
        self.xs.clone_from(&source.xs);
        self.zs.clone_from(&source.zs);
        self.phase.clone_from(&source.phase);
        self.gate_ops = source.gate_ops;
    }

    fn apply_op(&mut self, op: &SimOp) {
        let clifford = op.clifford().unwrap_or_else(|| {
            panic!(
                "stabilizer backend cannot apply non-Clifford op on target {} \
                 (compile-time classification found no CliffordOp); \
                 route this program to the statevector backend",
                op.target()
            )
        });
        self.apply_clifford(clifford);
    }

    fn apply_pauli(&mut self, q: usize, p: Pauli) {
        match p {
            Pauli::I => {}
            Pauli::X => self.x(q),
            Pauli::Y => self.y(q),
            Pauli::Z => self.z(q),
        }
    }

    fn prob_one(&self, q: usize) -> f64 {
        StabilizerState::prob_one(self, q)
    }

    fn measure_qubit<R: Rng + ?Sized>(&mut self, q: usize, rng: &mut R) -> u8 {
        StabilizerState::measure_qubit(self, q, rng)
    }

    fn outcome_distribution(&self, qubits: &[usize]) -> HashMap<u64, f64> {
        StabilizerState::outcome_distribution(self, qubits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gates;
    use crate::state::State;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Apply the same Clifford op to a dense state, for cross-checks.
    fn apply_dense(state: &mut State, op: &CliffordOp) {
        match *op {
            CliffordOp::Gate1 { gate, target } => {
                let m = match gate {
                    CliffordGate1::H => gates::h(),
                    CliffordGate1::S => gates::s(),
                    CliffordGate1::Sdg => gates::sdg(),
                    CliffordGate1::X => gates::x(),
                    CliffordGate1::Y => gates::y(),
                    CliffordGate1::Z => gates::z(),
                };
                state.apply_1q(target, &m);
            }
            CliffordOp::Cx { control, target } => {
                state.apply_controlled_1q(&[control], target, &gates::x());
            }
            CliffordOp::Cy { control, target } => {
                state.apply_controlled_1q(&[control], target, &gates::y());
            }
            CliffordOp::Cz { control, target } => {
                state.apply_controlled_1q(&[control], target, &gates::z());
            }
            CliffordOp::Swap { a, b } => state.swap(a, b),
        }
    }

    /// A deterministic pseudo-random Clifford circuit.
    fn random_ops(n: usize, len: usize, seed: u64) -> Vec<CliffordOp> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..len)
            .map(|_| {
                let target = rng.gen_range(0..n);
                match rng.gen_range(0..10u32) {
                    0 => CliffordOp::Gate1 {
                        gate: CliffordGate1::H,
                        target,
                    },
                    1 => CliffordOp::Gate1 {
                        gate: CliffordGate1::S,
                        target,
                    },
                    2 => CliffordOp::Gate1 {
                        gate: CliffordGate1::Sdg,
                        target,
                    },
                    3 => CliffordOp::Gate1 {
                        gate: CliffordGate1::X,
                        target,
                    },
                    4 => CliffordOp::Gate1 {
                        gate: CliffordGate1::Y,
                        target,
                    },
                    5 => CliffordOp::Gate1 {
                        gate: CliffordGate1::Z,
                        target,
                    },
                    kind => {
                        let mut other = rng.gen_range(0..n - 1);
                        if other >= target {
                            other += 1;
                        }
                        match kind {
                            6 => CliffordOp::Cx {
                                control: other,
                                target,
                            },
                            7 => CliffordOp::Cy {
                                control: other,
                                target,
                            },
                            8 => CliffordOp::Cz {
                                control: other,
                                target,
                            },
                            _ => CliffordOp::Swap {
                                a: other,
                                b: target,
                            },
                        }
                    }
                }
            })
            .collect()
    }

    fn dists_match(a: &HashMap<u64, f64>, b: &HashMap<u64, f64>, tol: f64) -> bool {
        let keys: std::collections::HashSet<u64> = a.keys().chain(b.keys()).copied().collect();
        keys.into_iter().all(|k| {
            (a.get(&k).copied().unwrap_or(0.0) - b.get(&k).copied().unwrap_or(0.0)).abs() <= tol
        })
    }

    #[test]
    fn zero_state_guards_and_shape() {
        assert!(StabilizerState::zero(0).is_err());
        assert!(StabilizerState::zero(MAX_STABILIZER_QUBITS + 1).is_err());
        let s = StabilizerState::zero(3).unwrap();
        assert_eq!(s.num_qubits(), 3);
        for q in 0..3 {
            assert_eq!(s.prob_one(q), 0.0);
        }
    }

    #[test]
    fn x_flips_and_h_randomizes() {
        let mut s = StabilizerState::zero(2).unwrap();
        s.x(0);
        assert_eq!(s.prob_one(0), 1.0);
        assert_eq!(s.prob_one(1), 0.0);
        s.h(1);
        assert_eq!(s.prob_one(1), 0.5);
        // HH = I.
        s.h(1);
        assert_eq!(s.prob_one(1), 0.0);
    }

    #[test]
    fn ghz_distribution_is_two_point() {
        let mut s = StabilizerState::zero(5).unwrap();
        s.h(0);
        for q in 1..5 {
            s.cx(q - 1, q);
        }
        let dist = s.outcome_distribution(&[0, 1, 2, 3, 4]);
        assert_eq!(dist.len(), 2);
        assert_eq!(dist[&0b00000], 0.5);
        assert_eq!(dist[&0b11111], 0.5);
    }

    #[test]
    fn bell_measurement_collapses_partner() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 2];
        for _ in 0..40 {
            let mut s = StabilizerState::zero(2).unwrap();
            s.h(0);
            s.cx(0, 1);
            let a = s.measure_qubit(0, &mut rng);
            // After collapse the partner is deterministic and equal.
            assert_eq!(s.prob_one(1), f64::from(a));
            assert_eq!(s.measure_qubit(1, &mut rng), a);
            seen[a as usize] = true;
        }
        assert!(seen[0] && seen[1], "both outcomes should occur");
    }

    #[test]
    fn repeated_measurement_is_stable() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut s = StabilizerState::zero(3).unwrap();
        s.h(0);
        s.cx(0, 1);
        s.s(1);
        let first = s.measure_qubit(0, &mut rng);
        for _ in 0..5 {
            assert_eq!(s.measure_qubit(0, &mut rng), first);
        }
    }

    #[test]
    fn phase_gates_are_invisible_in_z_but_not_after_h() {
        // S|+⟩ = |+i⟩: still uniform in Z; HS|+⟩ measures deterministically
        // only after the full S·S = Z: H S S |+⟩ = H Z |+⟩ = H|−⟩ = |1⟩.
        let mut s = StabilizerState::zero(1).unwrap();
        s.h(0);
        s.s(0);
        assert_eq!(s.prob_one(0), 0.5);
        s.s(0);
        s.h(0);
        assert_eq!(s.prob_one(0), 1.0);
        // And S† undoes S.
        let mut t = StabilizerState::zero(1).unwrap();
        t.h(0);
        t.s(0);
        t.sdg(0);
        t.h(0);
        assert_eq!(t.prob_one(0), 0.0);
    }

    #[test]
    fn random_circuits_match_dense_distributions() {
        for (n, len, seed) in [
            (2, 24, 1u64),
            (3, 40, 2),
            (4, 60, 3),
            (5, 80, 4),
            (6, 120, 5),
        ] {
            let ops = random_ops(n, len, seed);
            let mut tableau = StabilizerState::zero(n).unwrap();
            let mut dense = State::zero(n);
            for op in &ops {
                tableau.apply_clifford(op);
                apply_dense(&mut dense, op);
            }
            let qubits: Vec<usize> = (0..n).collect();
            let td = tableau.outcome_distribution(&qubits);
            let dd = SimBackend::outcome_distribution(&dense, &qubits);
            assert!(
                dists_match(&td, &dd, 1e-9),
                "n={n} seed={seed}: tableau {td:?} vs dense {dd:?}"
            );
            // Marginals of a random subset agree too.
            let sub: Vec<usize> = (0..n).step_by(2).collect();
            assert!(dists_match(
                &tableau.outcome_distribution(&sub),
                &SimBackend::outcome_distribution(&dense, &sub),
                1e-9
            ));
            // prob_one agrees on every qubit.
            for q in 0..n {
                assert!(
                    (tableau.prob_one(q) - dense.prob_one(q)).abs() < 1e-9,
                    "n={n} seed={seed} q={q}"
                );
            }
        }
    }

    #[test]
    fn sampling_follows_the_exact_distribution() {
        let mut s = StabilizerState::zero(3).unwrap();
        s.h(0);
        s.cx(0, 1);
        s.x(2);
        let mut rng = StdRng::seed_from_u64(9);
        let mut counts: HashMap<u64, u32> = HashMap::new();
        let shots = 4000;
        for _ in 0..shots {
            *counts
                .entry(s.sample_qubits(&[0, 1, 2], &mut rng))
                .or_insert(0) += 1;
        }
        // Support: {100, 111} (qubit 2 always 1), roughly even.
        assert_eq!(counts.len(), 2);
        for key in [0b100u64, 0b111] {
            let c = counts[&key];
            assert!(
                (f64::from(c) - 2000.0).abs() < 250.0,
                "count {c} for {key:#b}"
            );
        }
    }

    #[test]
    fn seeded_sampling_is_reproducible() {
        let mut s = StabilizerState::zero(4).unwrap();
        s.h(0);
        s.cx(0, 2);
        s.cz(1, 3);
        s.y(1);
        let draw = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..64)
                .map(|_| s.sample_qubits(&[0, 1, 2, 3], &mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(draw(5), draw(5));
        assert_ne!(draw(5), draw(6));
    }

    #[test]
    fn gate_ops_counts_each_clifford_once() {
        let mut s = StabilizerState::zero(3).unwrap();
        s.h(0);
        s.cz(0, 1);
        s.swap(1, 2);
        s.swap(2, 2); // no-op
        assert_eq!(s.gate_ops(), 3);
        s.reset_gate_ops();
        assert_eq!(s.gate_ops(), 0);
    }

    #[test]
    fn hundred_qubit_ghz_is_cheap() {
        let mut s = StabilizerState::zero(100).unwrap();
        s.h(0);
        for q in 1..100 {
            s.cx(q - 1, q);
        }
        let dist = s.outcome_distribution(&[0, 50, 99]);
        assert_eq!(dist.len(), 2);
        assert_eq!(dist[&0b000], 0.5);
        assert_eq!(dist[&0b111], 0.5);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_qubit_panics() {
        StabilizerState::zero(2).unwrap().h(2);
    }

    #[test]
    #[should_panic(expected = "non-Clifford")]
    fn non_clifford_op_panics() {
        use crate::backend::{KernelOp, SimOp};
        use crate::Complex;
        let mut s = StabilizerState::zero(1).unwrap();
        let t_gate = SimOp::new(
            vec![],
            0,
            KernelOp::Diagonal {
                d0: Complex::ONE,
                d1: Complex::cis(std::f64::consts::FRAC_PI_4),
            },
        );
        s.apply_op(&t_gate);
    }
}
