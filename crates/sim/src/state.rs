//! The dense state vector and gate application.

use crate::complex::Complex;
use crate::error::SimError;
use crate::gates::Matrix2;

/// Hard cap on state size: 2²⁶ amplitudes ≈ 1 GiB. The paper notes
/// workstation simulation tops out at 20–30 qubits; everything in the
/// benchmarks fits in ≤ 14.
pub const MAX_QUBITS: usize = 26;

/// A single-qubit Pauli operator, used to build observables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Pauli {
    /// Identity.
    I,
    /// Pauli X.
    X,
    /// Pauli Y.
    Y,
    /// Pauli Z.
    Z,
}

impl Pauli {
    /// The 2×2 matrix of this operator.
    #[must_use]
    pub fn matrix(self) -> Matrix2 {
        match self {
            Pauli::I => Matrix2::identity(),
            Pauli::X => crate::gates::x(),
            Pauli::Y => crate::gates::y(),
            Pauli::Z => crate::gates::z(),
        }
    }
}

/// A pure quantum state of `n` qubits stored as `2ⁿ` dense amplitudes.
///
/// Qubit `k` is the k-th least significant bit of a basis index (see the
/// crate docs for why this matches the paper's register conventions).
///
/// ```
/// use qdb_sim::{gates, State};
/// let mut psi = State::zero(1);
/// psi.apply_1q(0, &gates::h());
/// assert!((psi.probability(0) - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct State {
    num_qubits: usize,
    amps: Vec<Complex>,
    gate_ops: u64,
    index_ops: u64,
    /// Whether the run-based kernels may chunk their run space across
    /// rayon workers. Off by default; a policy layer (the ensemble
    /// config) opts single-owner states in. Orthogonal to state value:
    /// kernels produce bit-identical amplitudes either way.
    intra_parallel: bool,
    /// Parallel chunks dispatched by intra-parallel kernel calls (an
    /// instrumentation counter like `index_ops`; equality ignores it).
    par_chunks: u64,
}

/// Equality compares qubit count and amplitudes only; the
/// [`gate_ops`](State::gate_ops) and [`index_ops`](State::index_ops)
/// instrumentation counters are ignored, so a freshly simulated state
/// equals a checkpointed copy of itself.
impl PartialEq for State {
    fn eq(&self, other: &Self) -> bool {
        self.num_qubits == other.num_qubits && self.amps == other.amps
    }
}

impl State {
    /// The all-zeros computational basis state `|0…0⟩`.
    ///
    /// # Panics
    ///
    /// Panics if `num_qubits > MAX_QUBITS` or `num_qubits == 0`.
    #[must_use]
    pub fn zero(num_qubits: usize) -> Self {
        Self::basis(num_qubits, 0).expect("|0…0⟩ always exists")
    }

    /// The all-zeros state `|0…0⟩`, with the amplitude buffer allocated
    /// *fallibly*: a `2ⁿ` request the allocator cannot satisfy returns
    /// [`SimError::AllocationFailed`] instead of aborting the process.
    ///
    /// This is the construction path the execution governor routes
    /// through — near the dense ceiling a failed allocation becomes a
    /// typed error carrying the byte count, which the ensemble layer
    /// converts into an interrupted session with a partial report.
    /// States built this way are bit-for-bit [`State::zero`].
    ///
    /// # Errors
    ///
    /// * [`SimError::InvalidDimension`] when `num_qubits == 0`;
    /// * [`SimError::TooManyQubits`] beyond [`MAX_QUBITS`];
    /// * [`SimError::AllocationFailed`] when the allocator refuses the
    ///   `2ⁿ` amplitude buffer.
    pub fn try_zero_state(num_qubits: usize) -> Result<Self, SimError> {
        if num_qubits == 0 {
            return Err(SimError::InvalidDimension(0));
        }
        if num_qubits > MAX_QUBITS {
            return Err(SimError::TooManyQubits(num_qubits));
        }
        let dim = 1usize << num_qubits;
        let bytes = dim * std::mem::size_of::<Complex>();
        let mut amps: Vec<Complex> = Vec::new();
        amps.try_reserve_exact(dim)
            .map_err(|_| SimError::AllocationFailed { bytes })?;
        amps.resize(dim, Complex::ZERO);
        amps[0] = Complex::ONE;
        Ok(Self {
            num_qubits,
            amps,
            gate_ops: 0,
            index_ops: 0,
            intra_parallel: false,
            par_chunks: 0,
        })
    }

    /// Bytes of memory this state holds resident — the amplitude
    /// buffer's capacity plus the struct header. The execution
    /// governor's `max_resident_bytes` budget polls this.
    #[must_use]
    pub fn resident_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.amps.capacity() * std::mem::size_of::<Complex>()
    }

    /// The computational basis state `|index⟩`.
    ///
    /// # Errors
    ///
    /// * [`SimError::TooManyQubits`] beyond [`MAX_QUBITS`];
    /// * [`SimError::InvalidDimension`] when `num_qubits == 0`;
    /// * [`SimError::QubitOutOfRange`] when `index ≥ 2^num_qubits`.
    pub fn basis(num_qubits: usize, index: u64) -> Result<Self, SimError> {
        if num_qubits == 0 {
            return Err(SimError::InvalidDimension(0));
        }
        if num_qubits > MAX_QUBITS {
            return Err(SimError::TooManyQubits(num_qubits));
        }
        let dim = 1usize << num_qubits;
        if index as usize >= dim {
            return Err(SimError::QubitOutOfRange {
                qubit: index as usize,
                num_qubits,
            });
        }
        let mut amps = vec![Complex::ZERO; dim];
        amps[index as usize] = Complex::ONE;
        Ok(Self {
            num_qubits,
            amps,
            gate_ops: 0,
            index_ops: 0,
            intra_parallel: false,
            par_chunks: 0,
        })
    }

    /// Build a state from raw amplitudes, normalizing them.
    ///
    /// # Errors
    ///
    /// * [`SimError::InvalidDimension`] unless the length is a power of two
    ///   greater than 1;
    /// * [`SimError::NotNormalized`] when the vector has (near-)zero norm;
    /// * [`SimError::TooManyQubits`] beyond [`MAX_QUBITS`].
    pub fn from_amplitudes(amps: Vec<Complex>) -> Result<Self, SimError> {
        let dim = amps.len();
        if dim < 2 || !dim.is_power_of_two() {
            return Err(SimError::InvalidDimension(dim));
        }
        let num_qubits = dim.trailing_zeros() as usize;
        if num_qubits > MAX_QUBITS {
            return Err(SimError::TooManyQubits(num_qubits));
        }
        let norm_sqr: f64 = amps.iter().map(|a| a.norm_sqr()).sum();
        if norm_sqr < 1e-12 {
            return Err(SimError::NotNormalized);
        }
        let scale = norm_sqr.sqrt().recip();
        let amps = amps.into_iter().map(|a| a.scale(scale)).collect();
        Ok(Self {
            num_qubits,
            amps,
            gate_ops: 0,
            index_ops: 0,
            intra_parallel: false,
            par_chunks: 0,
        })
    }

    /// Number of qubits.
    #[must_use]
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Dimension of the state vector, `2ⁿ`.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.amps.len()
    }

    /// Amplitude of basis state `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index ≥ dim()`.
    #[must_use]
    pub fn amplitude(&self, index: usize) -> Complex {
        self.amps[index]
    }

    /// All amplitudes, in basis-index order.
    #[must_use]
    pub fn amplitudes(&self) -> &[Complex] {
        &self.amps
    }

    /// Born-rule probability of basis state `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index ≥ dim()`.
    #[must_use]
    pub fn probability(&self, index: usize) -> f64 {
        self.amps[index].norm_sqr()
    }

    /// The full probability vector.
    #[must_use]
    pub fn probabilities(&self) -> Vec<f64> {
        let mut out = Vec::new();
        self.probabilities_into(&mut out);
        out
    }

    /// Fill `out` with the full probability vector, reusing its
    /// allocation.
    ///
    /// This is the allocation-free sibling of
    /// [`probabilities`](State::probabilities) for hot loops that query
    /// the distribution repeatedly (the per-breakpoint sampling loop
    /// rebuilds a `2ⁿ` CDF at every assertion; with this entry point —
    /// via [`Sampler::rebuild`](crate::Sampler::rebuild) — the buffer
    /// is allocated once per sweep instead of once per breakpoint).
    /// `out` is cleared first; values and order match
    /// [`probabilities`](State::probabilities) exactly.
    pub fn probabilities_into(&self, out: &mut Vec<f64>) {
        out.clear();
        out.extend(self.amps.iter().map(|a| a.norm_sqr()));
    }

    /// Squared norm `⟨ψ|ψ⟩` (1 for a valid state, up to float error).
    #[must_use]
    pub fn norm_sqr(&self) -> f64 {
        self.amps.iter().map(|a| a.norm_sqr()).sum()
    }

    /// Rescale to unit norm.
    pub fn normalize(&mut self) {
        let scale = self.norm_sqr().sqrt().recip();
        for a in &mut self.amps {
            *a = a.scale(scale);
        }
    }

    /// Number of gate applications this state has undergone: every
    /// [`apply_1q`](State::apply_1q) /
    /// [`apply_controlled_1q`](State::apply_controlled_1q) /
    /// [`swap`](State::swap) /
    /// [`apply_controlled_swap`](State::apply_controlled_swap) /
    /// [`apply_unitary`](State::apply_unitary) call counts as one, as
    /// does each specialized kernel in [`kernels`](crate::kernels).
    /// The no-op `swap(q, q)` does not count.
    ///
    /// The counter is the instrumentation behind the sweep-vs-prefix
    /// complexity proofs: applying a circuit prefix of length `p` to a
    /// fresh state leaves `gate_ops() == p`, so a runner that never
    /// replays a prefix can demonstrate `O(G)` total work. A `clone()`
    /// checkpoint inherits the count (it has undergone the same
    /// operations); equality comparisons ignore it.
    #[must_use]
    pub fn gate_ops(&self) -> u64 {
        self.gate_ops
    }

    /// Reset the [`gate_ops`](State::gate_ops) counter to zero.
    pub fn reset_gate_ops(&mut self) {
        self.gate_ops = 0;
    }

    /// Number of basis-index loop iterations gate application has spent
    /// on this state — the *index work* behind each
    /// [`gate_ops`](State::gate_ops) unit.
    ///
    /// Each kernel adds its inner-loop trip count: the dense pair loop
    /// of [`apply_1q`](State::apply_1q) adds `2ⁿ⁻¹` (one per amplitude
    /// pair); the mask-filtering scans of
    /// [`apply_controlled_1q`](State::apply_controlled_1q),
    /// [`swap`](State::swap), and
    /// [`apply_controlled_swap`](State::apply_controlled_swap) add
    /// `2ⁿ⁻¹`, `2ⁿ`, and `2ⁿ` respectively (they visit every candidate
    /// index whether or not the controls match); the subspace kernels in
    /// [`kernels`](crate::kernels) add only the control-satisfying
    /// subspace they enumerate (e.g. `2ⁿ⁻³` for a Toffoli). This is the
    /// counter that lets tests *prove* kernel specialization reduces
    /// index work rather than assuming it. `clone()` inherits the
    /// count; equality comparisons ignore it.
    #[must_use]
    pub fn index_ops(&self) -> u64 {
        self.index_ops
    }

    /// Reset the [`index_ops`](State::index_ops) counter to zero.
    pub fn reset_index_ops(&mut self) {
        self.index_ops = 0;
    }

    /// Overwrite this state with an exact copy of `source`, reusing the
    /// existing amplitude buffer when its capacity suffices.
    ///
    /// Bit-for-bit equivalent to `*self = source.clone()` — amplitudes
    /// and both instrumentation counters are copied — but a buffer of
    /// matching capacity is recycled instead of reallocated, which is
    /// what makes a pooled trajectory fork
    /// ([`StatePool`](crate::pool::StatePool)) a plain `memcpy`.
    pub fn copy_from(&mut self, source: &State) {
        self.num_qubits = source.num_qubits;
        self.amps.clone_from(&source.amps);
        self.gate_ops = source.gate_ops;
        self.index_ops = source.index_ops;
        self.intra_parallel = source.intra_parallel;
        self.par_chunks = source.par_chunks;
    }

    /// Whether the kernels may chunk their run space across rayon
    /// workers for this state. See
    /// [`set_intra_parallel`](State::set_intra_parallel).
    #[must_use]
    pub fn intra_parallel(&self) -> bool {
        self.intra_parallel
    }

    /// Opt this state in to (or out of) amplitude-parallel kernels.
    ///
    /// This is a *policy* switch, not a semantic one: chunked kernels
    /// partition the disjoint run space across workers and perform the
    /// same pairs, in the same per-run order, with the same arithmetic,
    /// so amplitudes are bit-for-bit identical at any thread count.
    /// Kernels additionally stay serial below
    /// [`INTRA_PAR_MIN_QUBITS`](crate::kernels::INTRA_PAR_MIN_QUBITS)
    /// qubits or when only one rayon worker is configured. Callers that
    /// fan out *across* states (per-shot waves) should leave this off
    /// for the fanned-out states so parallelism never nests.
    pub fn set_intra_parallel(&mut self, enabled: bool) {
        self.intra_parallel = enabled;
    }

    /// Parallel chunks dispatched by intra-parallel kernel calls since
    /// construction (or the last [`reset_par_chunks`](State::reset_par_chunks)).
    /// Serial kernel invocations contribute nothing, so this doubles as
    /// a probe that chunking actually engaged.
    #[must_use]
    pub fn par_chunks(&self) -> u64 {
        self.par_chunks
    }

    /// Reset the [`par_chunks`](State::par_chunks) counter to zero.
    pub fn reset_par_chunks(&mut self) {
        self.par_chunks = 0;
    }

    /// Count `n` dispatched kernel chunks (kernel entry points live in
    /// [`kernels`](crate::kernels), outside this module).
    pub(crate) fn record_par_chunks(&mut self, n: u64) {
        self.par_chunks += n;
    }

    /// Mutable access to the raw amplitudes for in-crate measurement code.
    pub(crate) fn amps_mut(&mut self) -> &mut [Complex] {
        &mut self.amps
    }

    /// Count one gate application (kernel entry points in
    /// [`kernels`](crate::kernels) live outside this module).
    pub(crate) fn record_gate_op(&mut self) {
        self.gate_ops += 1;
    }

    /// Count `n` basis-index loop iterations.
    pub(crate) fn record_index_ops(&mut self, n: u64) {
        self.index_ops += n;
    }

    pub(crate) fn check_qubit(&self, q: usize) -> usize {
        assert!(
            q < self.num_qubits,
            "qubit {q} out of range for {}-qubit state",
            self.num_qubits
        );
        q
    }

    /// Apply a single-qubit unitary to `target`.
    ///
    /// # Panics
    ///
    /// Panics if `target` is out of range.
    pub fn apply_1q(&mut self, target: usize, m: &Matrix2) {
        self.check_qubit(target);
        self.gate_ops += 1;
        self.index_ops += (self.amps.len() as u64) / 2;
        let mask = 1usize << target;
        let dim = self.amps.len();
        let m = m.0;
        let mut base = 0usize;
        while base < dim {
            for i0 in base..base + mask {
                let i1 = i0 | mask;
                let a = self.amps[i0];
                let b = self.amps[i1];
                self.amps[i0] = m[0][0] * a + m[0][1] * b;
                self.amps[i1] = m[1][0] * a + m[1][1] * b;
            }
            base += mask << 1;
        }
    }

    /// Branch norms `pᵢ = ‖Kᵢ|ψ⟩‖²` for a set of single-qubit Kraus
    /// operators acting on `target` — the norm-dependent distribution a
    /// Kraus trajectory step draws its branch from. One pass over the
    /// amplitude pairs serves every operator. For a CPTP set on a
    /// normalized state the norms sum to 1 (up to float error); this is
    /// a read-only probe and does not touch the instrumentation
    /// counters.
    ///
    /// # Panics
    ///
    /// Panics if `target` is out of range.
    #[must_use]
    pub fn kraus_branch_norms(&self, target: usize, ops: &[Matrix2]) -> Vec<f64> {
        self.check_qubit(target);
        let mask = 1usize << target;
        let dim = self.amps.len();
        let mut norms = vec![0.0f64; ops.len()];
        let mut base = 0usize;
        while base < dim {
            for i0 in base..base + mask {
                let i1 = i0 | mask;
                let a = self.amps[i0];
                let b = self.amps[i1];
                for (norm, k) in norms.iter_mut().zip(ops) {
                    let m = &k.0;
                    *norm += (m[0][0] * a + m[0][1] * b).norm_sqr()
                        + (m[1][0] * a + m[1][1] * b).norm_sqr();
                }
            }
            base += mask << 1;
        }
        norms
    }

    /// One Kraus-channel trajectory step on `target`: compute the
    /// branch norms `pᵢ = ‖Kᵢ|ψ⟩‖²`, draw a branch from that
    /// norm-dependent distribution, apply the selected `Kᵢ/√pᵢ`, and
    /// return the chosen branch index. Averaging `|ψ⟩⟨ψ|` over many
    /// such trajectories reproduces the channel `ρ → Σᵢ KᵢρKᵢ†`.
    ///
    /// **Draw contract** (the noisy-stream determinism contract): a
    /// potentially-branching set (`ops.len() ≥ 2`) consumes **exactly
    /// one** uniform, drawn *before* any state work; a single-operator
    /// set is deterministic — `K₀` is applied directly (CPTP forces it
    /// unitary) and **nothing** is drawn. The branch choice and the
    /// applied rescaling are pure functions of `(ops, |ψ⟩, u)`, so a
    /// seeded stream replays bit-for-bit.
    ///
    /// The applied branch counts as one [`gate_ops`](State::gate_ops)
    /// unit, exactly like the `apply_1q` it lowers to.
    ///
    /// # Panics
    ///
    /// Panics if `target` is out of range, `ops` is empty, or every
    /// branch has zero norm (only possible for a non-CPTP set or an
    /// unnormalized state).
    pub fn apply_kraus<R: rand::Rng + ?Sized>(
        &mut self,
        target: usize,
        ops: &[Matrix2],
        rng: &mut R,
    ) -> usize {
        assert!(!ops.is_empty(), "a Kraus set needs at least one operator");
        if ops.len() == 1 {
            self.apply_1q(target, &ops[0]);
            return 0;
        }
        let u: f64 = rng.gen();
        let norms = self.kraus_branch_norms(target, ops);
        let total: f64 = norms.iter().sum();
        assert!(
            total > 0.0,
            "every Kraus branch has zero norm (non-CPTP set or zero state)"
        );
        // CDF walk scaled by the total, so float drift in Σpᵢ can never
        // push the draw off the end; a zero-norm branch is unselectable
        // (the strict `<` cannot newly hold when `acc` does not move).
        let mut chosen = None;
        let mut acc = 0.0f64;
        for (i, &p) in norms.iter().enumerate() {
            acc += p;
            if u * total < acc {
                chosen = Some(i);
                break;
            }
        }
        let chosen = chosen.unwrap_or_else(|| {
            // u == 1.0 exactly (or accumulated rounding): last live branch.
            norms.iter().rposition(|&p| p > 0.0).expect("total > 0")
        });
        self.apply_1q(target, &ops[chosen].scale(norms[chosen].sqrt().recip()));
        chosen
    }

    /// Apply a single-qubit unitary to `target`, conditioned on *all*
    /// `controls` being `|1⟩`. With one control and [`gates::x`] this is a
    /// CNOT; with two controls it is a Toffoli; with two controls and a
    /// rotation it is the paper's `ccRz`.
    ///
    /// An empty `controls` slice degenerates to [`State::apply_1q`].
    ///
    /// # Panics
    ///
    /// Panics if any qubit is out of range or `target` also appears in
    /// `controls`.
    ///
    /// [`gates::x`]: crate::gates::x
    pub fn apply_controlled_1q(&mut self, controls: &[usize], target: usize, m: &Matrix2) {
        self.check_qubit(target);
        let mut cmask = 0usize;
        for &c in controls {
            self.check_qubit(c);
            assert!(c != target, "control {c} equals target");
            cmask |= 1 << c;
        }
        if cmask == 0 {
            return self.apply_1q(target, m);
        }
        self.gate_ops += 1;
        self.index_ops += (self.amps.len() as u64) / 2;
        let tmask = 1usize << target;
        let dim = self.amps.len();
        let m = m.0;
        let mut base = 0usize;
        while base < dim {
            for i0 in base..base + tmask {
                if i0 & cmask == cmask {
                    let i1 = i0 | tmask;
                    let a = self.amps[i0];
                    let b = self.amps[i1];
                    self.amps[i0] = m[0][0] * a + m[0][1] * b;
                    self.amps[i1] = m[1][0] * a + m[1][1] * b;
                }
            }
            base += tmask << 1;
        }
    }

    /// Swap two qubits (relabels basis indices; exactly three CNOTs' worth
    /// of work done directly).
    ///
    /// `swap(q, q)` is a no-op: it touches no amplitudes and counts no
    /// work on either instrumentation counter.
    ///
    /// # Panics
    ///
    /// Panics if either qubit is out of range.
    pub fn swap(&mut self, a: usize, b: usize) {
        self.check_qubit(a);
        self.check_qubit(b);
        if a == b {
            return;
        }
        self.gate_ops += 1;
        self.index_ops += self.amps.len() as u64;
        let (lo, hi) = (a.min(b), a.max(b));
        let lo_mask = 1usize << lo;
        let hi_mask = 1usize << hi;
        for i in 0..self.amps.len() {
            let bit_lo = (i & lo_mask) != 0;
            let bit_hi = (i & hi_mask) != 0;
            if bit_lo && !bit_hi {
                let j = (i & !lo_mask) | hi_mask;
                self.amps.swap(i, j);
            }
        }
    }

    /// Swap two qubits conditioned on all `controls` being `|1⟩` (Fredkin
    /// when there is one control).
    ///
    /// # Panics
    ///
    /// Panics if qubits are out of range or overlap.
    pub fn apply_controlled_swap(&mut self, controls: &[usize], a: usize, b: usize) {
        self.check_qubit(a);
        self.check_qubit(b);
        assert!(a != b, "swap targets must differ");
        let mut cmask = 0usize;
        for &c in controls {
            self.check_qubit(c);
            assert!(c != a && c != b, "control {c} overlaps swap target");
            cmask |= 1 << c;
        }
        self.gate_ops += 1;
        self.index_ops += self.amps.len() as u64;
        let (lo, hi) = (a.min(b), a.max(b));
        let lo_mask = 1usize << lo;
        let hi_mask = 1usize << hi;
        for i in 0..self.amps.len() {
            if i & cmask != cmask {
                continue;
            }
            let bit_lo = (i & lo_mask) != 0;
            let bit_hi = (i & hi_mask) != 0;
            if bit_lo && !bit_hi {
                let j = (i & !lo_mask) | hi_mask;
                self.amps.swap(i, j);
            }
        }
    }

    /// Apply an arbitrary `2^k × 2^k` unitary to the ordered qubit list
    /// `qubits` (`qubits[0]` is the least significant bit of the matrix's
    /// sub-index).
    ///
    /// Used for exact controlled-`e^{−iHt}` application in the chemistry
    /// benchmark, where building the gate decomposition would obscure the
    /// experiment under test.
    ///
    /// # Errors
    ///
    /// * [`SimError::QubitOutOfRange`] / [`SimError::DuplicateQubit`] on a
    ///   bad qubit list;
    /// * [`SimError::InvalidMatrix`] if `matrix` is not `2^k × 2^k`.
    pub fn apply_unitary(
        &mut self,
        qubits: &[usize],
        matrix: &[Vec<Complex>],
    ) -> Result<(), SimError> {
        let k = qubits.len();
        let sub_dim = 1usize << k;
        if matrix.len() != sub_dim || matrix.iter().any(|row| row.len() != sub_dim) {
            return Err(SimError::InvalidMatrix {
                expected: sub_dim,
                found: matrix.len(),
            });
        }
        let mut seen = 0usize;
        for &q in qubits {
            if q >= self.num_qubits {
                return Err(SimError::QubitOutOfRange {
                    qubit: q,
                    num_qubits: self.num_qubits,
                });
            }
            if seen & (1 << q) != 0 {
                return Err(SimError::DuplicateQubit(q));
            }
            seen |= 1 << q;
        }
        self.gate_ops += 1;
        self.index_ops += 1u64 << (self.num_qubits - k);

        // offsets[s]: the full-index bits contributed by sub-index s.
        let mut offsets = vec![0usize; sub_dim];
        for (s, off) in offsets.iter_mut().enumerate() {
            let mut bits = 0usize;
            for (pos, &q) in qubits.iter().enumerate() {
                if s & (1 << pos) != 0 {
                    bits |= 1 << q;
                }
            }
            *off = bits;
        }

        // Iterate over every index whose `qubits` bits are all zero by
        // spreading a counter across the non-participating bit positions.
        let rest_bits = self.num_qubits - k;
        let free_positions: Vec<usize> = (0..self.num_qubits)
            .filter(|q| seen & (1 << q) == 0)
            .collect();
        let mut gathered = vec![Complex::ZERO; sub_dim];
        for r in 0..(1usize << rest_bits) {
            let mut base = 0usize;
            for (pos, &q) in free_positions.iter().enumerate() {
                if r & (1 << pos) != 0 {
                    base |= 1 << q;
                }
            }
            for (s, g) in gathered.iter_mut().enumerate() {
                *g = self.amps[base | offsets[s]];
            }
            for (row, offset) in offsets.iter().enumerate() {
                let mut acc = Complex::ZERO;
                for (col, g) in gathered.iter().enumerate() {
                    acc += matrix[row][col] * *g;
                }
                self.amps[base | offset] = acc;
            }
        }
        Ok(())
    }

    /// Inner product `⟨self|other⟩`.
    ///
    /// # Panics
    ///
    /// Panics if the states have different qubit counts.
    #[must_use]
    pub fn inner(&self, other: &State) -> Complex {
        assert_eq!(
            self.num_qubits, other.num_qubits,
            "inner product requires equal qubit counts"
        );
        self.amps
            .iter()
            .zip(&other.amps)
            .map(|(a, b)| a.conj() * *b)
            .sum()
    }

    /// Fidelity `|⟨self|other⟩|²`.
    ///
    /// # Panics
    ///
    /// Panics if the states have different qubit counts.
    #[must_use]
    pub fn fidelity(&self, other: &State) -> f64 {
        self.inner(other).norm_sqr()
    }

    /// Tensor product `other ⊗ self`: `self`'s qubits occupy the low-order
    /// bit positions of the result, `other`'s the high-order positions.
    ///
    /// The result is a newly constructed state, so its
    /// [`gate_ops`](State::gate_ops) counter starts at zero (unlike
    /// `clone()`, which inherits the count).
    ///
    /// # Panics
    ///
    /// Panics if the combined size exceeds [`MAX_QUBITS`].
    #[must_use]
    pub fn tensor(&self, other: &State) -> State {
        let n = self.num_qubits + other.num_qubits;
        assert!(n <= MAX_QUBITS, "tensor product exceeds MAX_QUBITS");
        let mut amps = vec![Complex::ZERO; 1 << n];
        for (j, &bo) in other.amps.iter().enumerate() {
            for (i, &ai) in self.amps.iter().enumerate() {
                amps[(j << self.num_qubits) | i] = ai * bo;
            }
        }
        State {
            num_qubits: n,
            amps,
            gate_ops: 0,
            index_ops: 0,
            intra_parallel: false,
            par_chunks: 0,
        }
    }

    /// Expectation value `⟨ψ| P |ψ⟩` of a Pauli string given as
    /// `(qubit, operator)` pairs (identity on unlisted qubits).
    ///
    /// # Panics
    ///
    /// Panics if a qubit repeats or is out of range.
    #[must_use]
    pub fn expect_pauli(&self, ops: &[(usize, Pauli)]) -> f64 {
        let mut phi = self.clone();
        let mut seen = 0usize;
        for &(q, p) in ops {
            phi.check_qubit(q);
            assert!(seen & (1 << q) == 0, "duplicate qubit {q} in Pauli string");
            seen |= 1 << q;
            if p != Pauli::I {
                phi.apply_1q(q, &p.matrix());
            }
        }
        self.inner(&phi).re
    }

    /// Marginal probability that qubit `q` measures `1`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    #[must_use]
    pub fn prob_one(&self, q: usize) -> f64 {
        self.check_qubit(q);
        let mask = 1usize << q;
        self.amps
            .iter()
            .enumerate()
            .filter(|(i, _)| i & mask != 0)
            .map(|(_, a)| a.norm_sqr())
            .sum()
    }

    /// Element-wise approximate equality of amplitudes.
    #[must_use]
    pub fn approx_eq(&self, other: &State, tol: f64) -> bool {
        self.num_qubits == other.num_qubits
            && self
                .amps
                .iter()
                .zip(&other.amps)
                .all(|(a, b)| a.approx_eq(*b, tol))
    }

    /// Approximate equality up to a global phase.
    #[must_use]
    pub fn approx_eq_up_to_phase(&self, other: &State, tol: f64) -> bool {
        if self.num_qubits != other.num_qubits {
            return false;
        }
        let ip = self.inner(other);
        (ip.abs() - 1.0).abs() <= tol * self.dim() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gates;
    use std::f64::consts::FRAC_1_SQRT_2;

    #[test]
    fn zero_state_is_basis_zero() {
        let s = State::zero(3);
        assert_eq!(s.num_qubits(), 3);
        assert_eq!(s.dim(), 8);
        assert_eq!(s.amplitude(0), Complex::ONE);
        assert!((s.norm_sqr() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn basis_state_bounds() {
        assert!(State::basis(2, 3).is_ok());
        assert!(State::basis(2, 4).is_err());
        assert!(State::basis(0, 0).is_err());
        assert!(State::basis(MAX_QUBITS + 1, 0).is_err());
    }

    #[test]
    fn from_amplitudes_normalizes() {
        let s = State::from_amplitudes(vec![Complex::real(3.0), Complex::real(4.0)]).unwrap();
        assert!((s.probability(0) - 9.0 / 25.0).abs() < 1e-15);
        assert!((s.probability(1) - 16.0 / 25.0).abs() < 1e-15);
    }

    #[test]
    fn from_amplitudes_validation() {
        assert_eq!(
            State::from_amplitudes(vec![Complex::ONE; 3]),
            Err(SimError::InvalidDimension(3))
        );
        assert_eq!(
            State::from_amplitudes(vec![Complex::ONE]),
            Err(SimError::InvalidDimension(1))
        );
        assert_eq!(
            State::from_amplitudes(vec![Complex::ZERO; 4]),
            Err(SimError::NotNormalized)
        );
    }

    #[test]
    fn hadamard_makes_uniform() {
        let mut s = State::zero(3);
        for q in 0..3 {
            s.apply_1q(q, &gates::h());
        }
        for i in 0..8 {
            assert!((s.probability(i) - 0.125).abs() < 1e-12);
        }
    }

    #[test]
    fn x_flips_each_qubit_position() {
        for q in 0..4 {
            let mut s = State::zero(4);
            s.apply_1q(q, &gates::x());
            assert!((s.probability(1 << q) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn cnot_truth_table() {
        // |c t⟩ with qubit 0 = control, qubit 1 = target.
        for (input, expected) in [
            (0b00u64, 0b00usize),
            (0b01, 0b11),
            (0b10, 0b10),
            (0b11, 0b01),
        ] {
            let mut s = State::basis(2, input).unwrap();
            s.apply_controlled_1q(&[0], 1, &gates::x());
            assert!(
                (s.probability(expected) - 1.0).abs() < 1e-12,
                "input {input:#04b}"
            );
        }
    }

    #[test]
    fn toffoli_truth_table() {
        for input in 0..8u64 {
            let mut s = State::basis(3, input).unwrap();
            s.apply_controlled_1q(&[0, 1], 2, &gates::x());
            let expected = if input & 0b11 == 0b11 {
                (input ^ 0b100) as usize
            } else {
                input as usize
            };
            assert!((s.probability(expected) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn bell_state_probabilities() {
        let mut s = State::zero(2);
        s.apply_1q(0, &gates::h());
        s.apply_controlled_1q(&[0], 1, &gates::x());
        assert!((s.probability(0b00) - 0.5).abs() < 1e-12);
        assert!((s.probability(0b11) - 0.5).abs() < 1e-12);
        assert!(s.probability(0b01).abs() < 1e-15);
        assert!(s.probability(0b10).abs() < 1e-15);
    }

    #[test]
    fn swap_exchanges_bits() {
        for input in 0..8u64 {
            let mut s = State::basis(3, input).unwrap();
            s.swap(0, 2);
            let b0 = input & 1;
            let b2 = (input >> 2) & 1;
            let expected = (input & 0b010) | (b0 << 2) | b2;
            assert!((s.probability(expected as usize) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn swap_same_qubit_is_noop() {
        let mut s = State::basis(2, 0b10).unwrap();
        let before = s.clone();
        s.swap(1, 1);
        assert!(s.approx_eq(&before, 0.0));
        // A no-op counts no work on either counter.
        assert_eq!(s.gate_ops(), 0);
        assert_eq!(s.index_ops(), 0);
    }

    #[test]
    fn probabilities_into_matches_and_reuses_buffer() {
        let mut s = State::zero(3);
        for q in 0..3 {
            s.apply_1q(q, &gates::h());
        }
        let fresh = s.probabilities();
        let mut buf = vec![0.0; 1]; // wrong length on purpose
        s.probabilities_into(&mut buf);
        assert_eq!(buf.len(), s.dim());
        for (a, b) in fresh.iter().zip(&buf) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // Reuse keeps the allocation.
        let cap = buf.capacity();
        s.probabilities_into(&mut buf);
        assert_eq!(buf.capacity(), cap);
    }

    #[test]
    fn index_ops_counts_scan_work() {
        let mut s = State::zero(4); // dim = 16
        s.apply_1q(0, &gates::h()); // 8 pairs
        assert_eq!(s.index_ops(), 8);
        s.apply_controlled_1q(&[0, 1], 2, &gates::x()); // scans 8 candidates
        assert_eq!(s.index_ops(), 16);
        s.swap(0, 3); // scans all 16 indices
        assert_eq!(s.index_ops(), 32);
        s.apply_controlled_swap(&[2], 0, 1); // scans all 16 indices
        assert_eq!(s.index_ops(), 48);
        let snapshot = s.clone();
        assert_eq!(snapshot.index_ops(), 48);
        s.reset_index_ops();
        assert_eq!(s.index_ops(), 0);
        assert_eq!(s, snapshot); // equality ignores the counters
    }

    #[test]
    fn controlled_swap_respects_control() {
        // Control qubit 2, swap 0 ↔ 1.
        let mut s = State::basis(3, 0b001).unwrap(); // control 0 → no swap
        s.apply_controlled_swap(&[2], 0, 1);
        assert!((s.probability(0b001) - 1.0).abs() < 1e-12);
        let mut s = State::basis(3, 0b101).unwrap(); // control 1 → swap
        s.apply_controlled_swap(&[2], 0, 1);
        assert!((s.probability(0b110) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn apply_unitary_matches_1q_path() {
        let mut a = State::zero(3);
        a.apply_1q(1, &gates::h());
        let h = gates::h().0;
        let matrix = vec![vec![h[0][0], h[0][1]], vec![h[1][0], h[1][1]]];
        let mut b = State::zero(3);
        b.apply_unitary(&[1], &matrix).unwrap();
        assert!(a.approx_eq(&b, 1e-12));
    }

    #[test]
    fn apply_unitary_two_qubit_cnot() {
        // CNOT as a dense 4×4 with qubit order [control, target].
        let z = Complex::ZERO;
        let o = Complex::ONE;
        let cnot = vec![
            vec![o, z, z, z],
            vec![z, z, z, o],
            vec![z, z, o, z],
            vec![z, o, z, z],
        ];
        for input in 0..4u64 {
            let mut dense = State::basis(2, input).unwrap();
            dense.apply_unitary(&[0, 1], &cnot).unwrap();
            let mut fast = State::basis(2, input).unwrap();
            fast.apply_controlled_1q(&[0], 1, &gates::x());
            assert!(dense.approx_eq(&fast, 1e-12), "input {input}");
        }
    }

    #[test]
    fn apply_unitary_validation() {
        let mut s = State::zero(2);
        let bad = vec![vec![Complex::ONE; 2]; 3];
        assert!(matches!(
            s.apply_unitary(&[0], &bad),
            Err(SimError::InvalidMatrix { .. })
        ));
        let id = vec![
            vec![Complex::ONE, Complex::ZERO],
            vec![Complex::ZERO, Complex::ONE],
        ];
        assert!(matches!(
            s.apply_unitary(&[5], &id),
            Err(SimError::QubitOutOfRange { .. })
        ));
        let id4 = vec![vec![Complex::ZERO; 4]; 4];
        assert!(matches!(
            s.apply_unitary(&[0, 0], &id4),
            Err(SimError::DuplicateQubit(0))
        ));
    }

    #[test]
    fn inner_product_and_fidelity() {
        let mut plus = State::zero(1);
        plus.apply_1q(0, &gates::h());
        let zero = State::zero(1);
        let ip = zero.inner(&plus);
        assert!((ip.re - FRAC_1_SQRT_2).abs() < 1e-12);
        assert!((zero.fidelity(&plus) - 0.5).abs() < 1e-12);
        assert!((plus.fidelity(&plus) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tensor_orders_qubits_low_to_high() {
        let one = State::basis(1, 1).unwrap();
        let zero = State::basis(1, 0).unwrap();
        // one ⊗ zero with `one` on the low bit: |0⟩⊗|1⟩ → index 0b01.
        let t = one.tensor(&zero);
        assert!((t.probability(0b01) - 1.0).abs() < 1e-15);
        let t2 = zero.tensor(&one);
        assert!((t2.probability(0b10) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn expect_pauli_basics() {
        let zero = State::zero(1);
        assert!((zero.expect_pauli(&[(0, Pauli::Z)]) - 1.0).abs() < 1e-12);
        let one = State::basis(1, 1).unwrap();
        assert!((one.expect_pauli(&[(0, Pauli::Z)]) + 1.0).abs() < 1e-12);
        let mut plus = State::zero(1);
        plus.apply_1q(0, &gates::h());
        assert!((plus.expect_pauli(&[(0, Pauli::X)]) - 1.0).abs() < 1e-12);
        assert!(plus.expect_pauli(&[(0, Pauli::Z)]).abs() < 1e-12);
    }

    #[test]
    fn expect_pauli_string_on_bell() {
        let mut bell = State::zero(2);
        bell.apply_1q(0, &gates::h());
        bell.apply_controlled_1q(&[0], 1, &gates::x());
        // ⟨XX⟩ = ⟨ZZ⟩ = 1, ⟨YY⟩ = −1 for (|00⟩+|11⟩)/√2.
        assert!((bell.expect_pauli(&[(0, Pauli::X), (1, Pauli::X)]) - 1.0).abs() < 1e-12);
        assert!((bell.expect_pauli(&[(0, Pauli::Z), (1, Pauli::Z)]) - 1.0).abs() < 1e-12);
        assert!((bell.expect_pauli(&[(0, Pauli::Y), (1, Pauli::Y)]) + 1.0).abs() < 1e-12);
        assert!(bell.expect_pauli(&[(0, Pauli::Z)]).abs() < 1e-12);
    }

    #[test]
    fn prob_one_marginal() {
        let mut s = State::zero(2);
        s.apply_1q(0, &gates::h());
        assert!((s.prob_one(0) - 0.5).abs() < 1e-12);
        assert!(s.prob_one(1).abs() < 1e-15);
    }

    #[test]
    fn norm_preserved_by_gates() {
        let mut s = State::zero(4);
        for q in 0..4 {
            s.apply_1q(q, &gates::h());
            s.apply_1q(q, &gates::t());
        }
        s.apply_controlled_1q(&[0, 1], 2, &gates::x());
        s.apply_controlled_1q(&[2], 3, &gates::ry(0.3));
        assert!((s.norm_sqr() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn approx_eq_up_to_phase_accepts_global_phase() {
        let mut a = State::zero(2);
        a.apply_1q(0, &gates::h());
        let mut b = a.clone();
        // rz imparts global phase on each branch differently; use a literal
        // global phase instead.
        for amp_index in 0..b.dim() {
            b.amps[amp_index] *= Complex::cis(0.7);
        }
        assert!(!a.approx_eq(&b, 1e-12));
        assert!(a.approx_eq_up_to_phase(&b, 1e-12));
    }

    #[test]
    fn gate_ops_counts_every_application_once() {
        let mut s = State::zero(3);
        assert_eq!(s.gate_ops(), 0);
        s.apply_1q(0, &gates::h());
        s.apply_controlled_1q(&[0], 1, &gates::x());
        s.apply_controlled_1q(&[], 2, &gates::t()); // delegates to apply_1q
        s.swap(0, 2);
        s.apply_controlled_swap(&[2], 0, 1);
        let id = vec![
            vec![Complex::ONE, Complex::ZERO],
            vec![Complex::ZERO, Complex::ONE],
        ];
        s.apply_unitary(&[1], &id).unwrap();
        assert_eq!(s.gate_ops(), 6);
        // Failed applications don't count.
        assert!(s.apply_unitary(&[9], &id).is_err());
        assert_eq!(s.gate_ops(), 6);
        // Checkpoints inherit the count; equality ignores it.
        let snapshot = s.clone();
        assert_eq!(snapshot.gate_ops(), 6);
        let mut fresh = State::zero(3);
        fresh.apply_1q(0, &gates::h());
        let mut same_amps = State::zero(3);
        same_amps.apply_1q(0, &gates::h());
        same_amps.reset_gate_ops();
        assert_eq!(same_amps.gate_ops(), 0);
        assert_eq!(fresh, same_amps);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn apply_1q_out_of_range_panics() {
        State::zero(2).apply_1q(2, &gates::x());
    }

    #[test]
    #[should_panic(expected = "control 0 equals target")]
    fn control_equals_target_panics() {
        State::zero(2).apply_controlled_1q(&[0], 0, &gates::x());
    }
}
