//! Standard single-qubit gate matrices.
//!
//! All gates are expressed as 2×2 unitary [`Matrix2`] values. Controlled
//! and multi-controlled application is handled by
//! [`State::apply_controlled_1q`](crate::State::apply_controlled_1q), so a
//! CNOT is "apply [`x`] controlled on one qubit", a Toffoli is "apply
//! [`x`] controlled on two qubits", and the paper's `ccRz` is "apply
//! [`rz`] controlled on two qubits".
//!
//! Rotation conventions follow Nielsen & Chuang:
//! `Rz(θ) = diag(e^{−iθ/2}, e^{+iθ/2})`, and the *phase* gate used by the
//! quantum Fourier transform is `P(θ) = diag(1, e^{iθ})`, which equals
//! `Rz(θ)` up to global phase (the paper's Scaffold `Rz` is this phase
//! rotation; both are provided and [`rz`]/[`phase`] are distinguished so
//! controlled versions — where global phase becomes relative — behave
//! correctly).

use crate::complex::Complex;
use std::f64::consts::FRAC_1_SQRT_2;
use std::fmt;

/// A 2×2 complex matrix in row-major order: `m[row][col]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Matrix2(pub [[Complex; 2]; 2]);

impl Matrix2 {
    /// The identity matrix.
    #[must_use]
    pub fn identity() -> Self {
        Matrix2([[Complex::ONE, Complex::ZERO], [Complex::ZERO, Complex::ONE]])
    }

    /// Matrix product `self · rhs`.
    #[must_use]
    pub fn mul(&self, rhs: &Matrix2) -> Matrix2 {
        let a = &self.0;
        let b = &rhs.0;
        let mut out = [[Complex::ZERO; 2]; 2];
        for (r, row) in out.iter_mut().enumerate() {
            for (c, cell) in row.iter_mut().enumerate() {
                *cell = a[r][0] * b[0][c] + a[r][1] * b[1][c];
            }
        }
        Matrix2(out)
    }

    /// Element-wise multiplication by a real scalar — how a Kraus
    /// operator `K` becomes the applied branch map `K/√p`.
    #[must_use]
    pub fn scale(&self, s: f64) -> Matrix2 {
        let m = &self.0;
        Matrix2([
            [m[0][0].scale(s), m[0][1].scale(s)],
            [m[1][0].scale(s), m[1][1].scale(s)],
        ])
    }

    /// Conjugate transpose (the adjoint, i.e. the inverse for a unitary).
    #[must_use]
    pub fn dagger(&self) -> Matrix2 {
        let m = &self.0;
        Matrix2([
            [m[0][0].conj(), m[1][0].conj()],
            [m[0][1].conj(), m[1][1].conj()],
        ])
    }

    /// `true` when `self · self† ≈ I` within `tol`.
    #[must_use]
    pub fn is_unitary(&self, tol: f64) -> bool {
        let p = self.mul(&self.dagger());
        p.0[0][0].approx_eq(Complex::ONE, tol)
            && p.0[1][1].approx_eq(Complex::ONE, tol)
            && p.0[0][1].approx_eq(Complex::ZERO, tol)
            && p.0[1][0].approx_eq(Complex::ZERO, tol)
    }

    /// Element-wise approximate equality.
    #[must_use]
    pub fn approx_eq(&self, other: &Matrix2, tol: f64) -> bool {
        self.0
            .iter()
            .flatten()
            .zip(other.0.iter().flatten())
            .all(|(a, b)| a.approx_eq(*b, tol))
    }

    /// Approximate equality up to a global phase factor.
    #[must_use]
    pub fn approx_eq_up_to_phase(&self, other: &Matrix2, tol: f64) -> bool {
        // Find the first element of `other` with significant magnitude and
        // align phases on it.
        for r in 0..2 {
            for c in 0..2 {
                if other.0[r][c].abs() > tol {
                    if self.0[r][c].abs() <= tol {
                        return false;
                    }
                    let phase = self.0[r][c] / other.0[r][c];
                    if (phase.abs() - 1.0).abs() > tol {
                        return false;
                    }
                    let rotated = Matrix2([
                        [other.0[0][0] * phase, other.0[0][1] * phase],
                        [other.0[1][0] * phase, other.0[1][1] * phase],
                    ]);
                    return self.approx_eq(&rotated, tol);
                }
            }
        }
        false
    }
}

impl fmt::Display for Matrix2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "[{}, {}]", self.0[0][0], self.0[0][1])?;
        write!(f, "[{}, {}]", self.0[1][0], self.0[1][1])
    }
}

/// Hadamard gate.
#[must_use]
pub fn h() -> Matrix2 {
    let s = Complex::real(FRAC_1_SQRT_2);
    Matrix2([[s, s], [s, -s]])
}

/// Pauli-X (NOT) gate.
#[must_use]
pub fn x() -> Matrix2 {
    Matrix2([[Complex::ZERO, Complex::ONE], [Complex::ONE, Complex::ZERO]])
}

/// Pauli-Y gate.
#[must_use]
pub fn y() -> Matrix2 {
    Matrix2([[Complex::ZERO, -Complex::I], [Complex::I, Complex::ZERO]])
}

/// Pauli-Z gate.
#[must_use]
pub fn z() -> Matrix2 {
    Matrix2([
        [Complex::ONE, Complex::ZERO],
        [Complex::ZERO, -Complex::ONE],
    ])
}

/// Phase gate S = diag(1, i).
///
/// Built from exact literals rather than `phase(π/2)`: `cos(π/2)`
/// rounds to `6.1e-17`, not zero, and the residue would both leak tiny
/// spurious real parts into amplitudes and disqualify S from the
/// exact-fusion class (entries in `{0, ±1, ±i}`) that `qdb-circuit`'s
/// `OptLevel::FuseExact` fuses bit-exactly.
#[must_use]
pub fn s() -> Matrix2 {
    Matrix2([[Complex::ONE, Complex::ZERO], [Complex::ZERO, Complex::I]])
}

/// Inverse phase gate S† = diag(1, −i). Exact literals, as [`s`].
#[must_use]
pub fn sdg() -> Matrix2 {
    Matrix2([[Complex::ONE, Complex::ZERO], [Complex::ZERO, -Complex::I]])
}

/// T gate = diag(1, e^{iπ/4}).
#[must_use]
pub fn t() -> Matrix2 {
    phase(std::f64::consts::FRAC_PI_4)
}

/// T† gate.
#[must_use]
pub fn tdg() -> Matrix2 {
    phase(-std::f64::consts::FRAC_PI_4)
}

/// Rotation about the X axis: `Rx(θ) = e^{−iθX/2}`.
#[must_use]
pub fn rx(theta: f64) -> Matrix2 {
    let c = Complex::real((theta / 2.0).cos());
    let s = Complex::new(0.0, -(theta / 2.0).sin());
    Matrix2([[c, s], [s, c]])
}

/// Rotation about the Y axis: `Ry(θ) = e^{−iθY/2}`.
#[must_use]
pub fn ry(theta: f64) -> Matrix2 {
    let c = Complex::real((theta / 2.0).cos());
    let s = Complex::real((theta / 2.0).sin());
    Matrix2([[c, -s], [s, c]])
}

/// Rotation about the Z axis: `Rz(θ) = diag(e^{−iθ/2}, e^{+iθ/2})`.
#[must_use]
pub fn rz(theta: f64) -> Matrix2 {
    Matrix2([
        [Complex::cis(-theta / 2.0), Complex::ZERO],
        [Complex::ZERO, Complex::cis(theta / 2.0)],
    ])
}

/// Phase rotation `P(θ) = diag(1, e^{iθ})` — the QFT's controlled-rotation
/// building block (the paper's Scaffold `Rz`).
#[must_use]
pub fn phase(theta: f64) -> Matrix2 {
    Matrix2([
        [Complex::ONE, Complex::ZERO],
        [Complex::ZERO, Complex::cis(theta)],
    ])
}

/// General single-qubit unitary
/// `U3(θ, φ, λ) = [[cos(θ/2), −e^{iλ} sin(θ/2)], [e^{iφ} sin(θ/2), e^{i(φ+λ)} cos(θ/2)]]`.
#[must_use]
pub fn u3(theta: f64, phi: f64, lambda: f64) -> Matrix2 {
    let c = (theta / 2.0).cos();
    let sn = (theta / 2.0).sin();
    Matrix2([
        [Complex::real(c), -Complex::cis(lambda) * sn],
        [Complex::cis(phi) * sn, Complex::cis(phi + lambda) * c],
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn all_named_gates_are_unitary() {
        for (name, g) in [
            ("h", h()),
            ("x", x()),
            ("y", y()),
            ("z", z()),
            ("s", s()),
            ("sdg", sdg()),
            ("t", t()),
            ("tdg", tdg()),
            ("rx", rx(0.7)),
            ("ry", ry(1.3)),
            ("rz", rz(2.1)),
            ("phase", phase(0.4)),
            ("u3", u3(0.3, 1.1, 2.2)),
        ] {
            assert!(g.is_unitary(1e-12), "{name} is not unitary");
        }
    }

    #[test]
    fn involutions_square_to_identity() {
        for (name, g) in [("h", h()), ("x", x()), ("y", y()), ("z", z())] {
            assert!(
                g.mul(&g).approx_eq(&Matrix2::identity(), 1e-12),
                "{name}² ≠ I"
            );
        }
    }

    #[test]
    fn s_squared_is_z_and_t_squared_is_s() {
        assert!(s().mul(&s()).approx_eq(&z(), 1e-12));
        assert!(t().mul(&t()).approx_eq(&s(), 1e-12));
    }

    #[test]
    fn hxh_equals_z() {
        assert!(h().mul(&x()).mul(&h()).approx_eq(&z(), 1e-12));
    }

    #[test]
    fn dagger_inverts() {
        let g = u3(0.9, 0.4, 1.8);
        assert!(g.mul(&g.dagger()).approx_eq(&Matrix2::identity(), 1e-12));
        assert!(g.dagger().mul(&g).approx_eq(&Matrix2::identity(), 1e-12));
    }

    #[test]
    fn rz_vs_phase_differ_by_global_phase() {
        let theta = 1.234;
        assert!(!rz(theta).approx_eq(&phase(theta), 1e-12));
        assert!(rz(theta).approx_eq_up_to_phase(&phase(theta), 1e-12));
    }

    #[test]
    fn rotation_composition_adds_angles() {
        let a = 0.6;
        let b = 1.1;
        assert!(rx(a).mul(&rx(b)).approx_eq(&rx(a + b), 1e-12));
        assert!(ry(a).mul(&ry(b)).approx_eq(&ry(a + b), 1e-12));
        assert!(rz(a).mul(&rz(b)).approx_eq(&rz(a + b), 1e-12));
    }

    #[test]
    fn full_turn_rotations_are_identity_up_to_phase() {
        assert!(rx(2.0 * PI).approx_eq_up_to_phase(&Matrix2::identity(), 1e-12));
        assert!(rz(2.0 * PI).approx_eq_up_to_phase(&Matrix2::identity(), 1e-12));
        assert!(phase(2.0 * PI).approx_eq(&Matrix2::identity(), 1e-12));
    }

    #[test]
    fn u3_special_cases() {
        assert!(u3(PI, 0.0, PI).approx_eq(&x(), 1e-12));
        assert!(u3(PI / 2.0, 0.0, PI).approx_eq(&h(), 1e-12));
        assert!(u3(0.0, 0.0, 0.7).approx_eq(&phase(0.7), 1e-12));
    }

    #[test]
    fn approx_eq_up_to_phase_rejects_different_gates() {
        assert!(!x().approx_eq_up_to_phase(&z(), 1e-12));
        assert!(!h().approx_eq_up_to_phase(&x(), 1e-12));
    }

    #[test]
    fn display_shows_entries() {
        let disp = x().to_string();
        assert!(disp.contains('1'));
    }
}
