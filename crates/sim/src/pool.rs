//! A reusable buffer pool for simulator states.
//!
//! The trajectory-tree ensemble engine forks every distinct noisy
//! trajectory from an ideal checkpoint: clone the frontier state, apply
//! the trajectory's first fault, replay its suffix, measure, discard.
//! Allocating a fresh state per fork would put an `O(2ⁿ)` (or `O(n²)`
//! for the tableau) allocation on the hot path for every unique
//! trajectory; the [`StatePool`] instead recycles returned buffers
//! through [`SimBackend::copy_from`], so steady-state forking is a
//! `memcpy` and the allocation count is bounded by the peak number of
//! simultaneously live forks — a number the engine controls (one in
//! serial mode, one replay wave in parallel mode), not the shot count.
//!
//! The pool is deliberately dumb: a mutex-guarded free list. Checkouts
//! happen once per *unique trajectory* (not per shot, not per gate), so
//! contention is negligible next to the suffix replay each checkout
//! pays for.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::backend::SimBackend;
use crate::pack::StatePack;

/// A free list of backend states, recycled across trajectory forks.
///
/// ```
/// use qdb_sim::{pool::StatePool, SimBackend, State};
///
/// let checkpoint = State::zero(3);
/// let pool: StatePool<State> = StatePool::new();
/// let fork = pool.acquire_copy(&checkpoint);   // allocates (pool empty)
/// pool.release(fork);
/// let fork = pool.acquire_copy(&checkpoint);   // recycles: no allocation
/// assert_eq!(fork, checkpoint);
/// assert_eq!(pool.states_allocated(), 1);
/// # pool.release(fork);
/// ```
#[derive(Debug, Default)]
pub struct StatePool<B> {
    free: Mutex<Vec<B>>,
    allocated: AtomicUsize,
    outstanding: AtomicUsize,
    free_packs: Mutex<Vec<StatePack>>,
    packs_leased: AtomicUsize,
    packed_lanes: AtomicUsize,
    packs_outstanding: AtomicUsize,
}

impl<B: SimBackend> StatePool<B> {
    /// An empty pool.
    #[must_use]
    pub fn new() -> Self {
        Self {
            free: Mutex::new(Vec::new()),
            allocated: AtomicUsize::new(0),
            outstanding: AtomicUsize::new(0),
            free_packs: Mutex::new(Vec::new()),
            packs_leased: AtomicUsize::new(0),
            packed_lanes: AtomicUsize::new(0),
            packs_outstanding: AtomicUsize::new(0),
        }
    }

    /// Check out a state holding an exact copy of `source`.
    ///
    /// Reuses a released buffer via [`SimBackend::copy_from`] when one
    /// is available, otherwise clones `source` fresh (counted by
    /// [`states_allocated`](StatePool::states_allocated)). Either way
    /// the result is bit-for-bit `source`.
    pub fn acquire_copy(&self, source: &B) -> B {
        self.outstanding.fetch_add(1, Ordering::Relaxed);
        let recycled = self.free.lock().expect("state pool lock").pop();
        match recycled {
            Some(mut state) => {
                state.copy_from(source);
                state
            }
            None => {
                self.allocated.fetch_add(1, Ordering::Relaxed);
                source.clone()
            }
        }
    }

    /// Return a state to the free list for future
    /// [`acquire_copy`](StatePool::acquire_copy) calls to recycle.
    pub fn release(&self, state: B) {
        self.outstanding.fetch_sub(1, Ordering::Relaxed);
        self.free.lock().expect("state pool lock").push(state);
    }

    /// Number of fresh allocations this pool has performed — its peak
    /// simultaneous checkout count. The trajectory-tree benchmarks
    /// assert this stays `O(1)` in the shot count.
    #[must_use]
    pub fn states_allocated(&self) -> usize {
        self.allocated.load(Ordering::Relaxed)
    }

    /// Number of states currently checked out (acquired but not yet
    /// released). The execution-governor tests assert this census
    /// returns to zero on every exit path — normal completion, budget
    /// trips, and injected faults alike — proving no fork buffer leaks
    /// when a run is cut short.
    #[must_use]
    pub fn outstanding(&self) -> usize {
        self.outstanding.load(Ordering::Relaxed)
    }

    /// Lease a `width`-lane pack broadcast from `source`, recycling a
    /// previously released pack buffer when one is available — the
    /// packed analogue of [`acquire_copy`](StatePool::acquire_copy).
    ///
    /// Returns `None` when the backend has no packed form (see
    /// [`SimBackend::pack_broadcast`]); callers fall back to per-fork
    /// replay. Leases and lane counts are tallied for the session
    /// stats ([`packs_leased`](StatePool::packs_leased),
    /// [`packed_lanes`](StatePool::packed_lanes)).
    pub fn lease_pack(&self, source: &B, width: usize) -> Option<StatePack> {
        let recycled = self.free_packs.lock().expect("pack pool lock").pop();
        let pack = match recycled {
            Some(mut pack) => {
                if source.pack_broadcast_into(&mut pack, width) {
                    Some(pack)
                } else {
                    None
                }
            }
            None => source.pack_broadcast(width),
        };
        if pack.is_some() {
            self.packs_leased.fetch_add(1, Ordering::Relaxed);
            self.packed_lanes.fetch_add(width, Ordering::Relaxed);
            self.packs_outstanding.fetch_add(1, Ordering::Relaxed);
        }
        pack
    }

    /// Return a leased pack's buffer for future
    /// [`lease_pack`](StatePool::lease_pack) calls to recycle.
    pub fn release_pack(&self, pack: StatePack) {
        self.packs_outstanding.fetch_sub(1, Ordering::Relaxed);
        self.free_packs.lock().expect("pack pool lock").push(pack);
    }

    /// Total packs leased over this pool's lifetime.
    #[must_use]
    pub fn packs_leased(&self) -> usize {
        self.packs_leased.load(Ordering::Relaxed)
    }

    /// Total trajectory lanes served through leased packs (the sum of
    /// pack widths) — each lane is a per-fork replay the pack replaced.
    #[must_use]
    pub fn packed_lanes(&self) -> usize {
        self.packed_lanes.load(Ordering::Relaxed)
    }

    /// Number of packs currently leased out (leased but not yet
    /// released); the packed analogue of
    /// [`outstanding`](StatePool::outstanding), asserted back to zero
    /// on every trajectory-session exit path.
    #[must_use]
    pub fn packs_outstanding(&self) -> usize {
        self.packs_outstanding.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gates;
    use crate::state::State;

    #[test]
    fn pool_recycles_instead_of_allocating() {
        let mut checkpoint = State::zero(4);
        checkpoint.apply_1q(0, &gates::h());
        let pool: StatePool<State> = StatePool::new();
        for round in 0..16 {
            let fork = pool.acquire_copy(&checkpoint);
            assert_eq!(fork, checkpoint, "round {round}");
            pool.release(fork);
        }
        assert_eq!(pool.states_allocated(), 1);
    }

    #[test]
    fn pool_copies_are_bit_exact_and_independent() {
        let mut checkpoint = State::zero(3);
        checkpoint.apply_1q(1, &gates::h());
        checkpoint.apply_1q(1, &gates::t());
        let pool: StatePool<State> = StatePool::new();
        let mut fork = pool.acquire_copy(&checkpoint);
        for i in 0..checkpoint.dim() {
            assert_eq!(
                fork.amplitude(i).re.to_bits(),
                checkpoint.amplitude(i).re.to_bits()
            );
            assert_eq!(
                fork.amplitude(i).im.to_bits(),
                checkpoint.amplitude(i).im.to_bits()
            );
        }
        // Counters ride along (a fork has undergone the prefix's work).
        assert_eq!(fork.gate_ops(), checkpoint.gate_ops());
        // Mutating the fork leaves the checkpoint alone.
        fork.apply_1q(0, &gates::x());
        assert!((checkpoint.probability(1) - 0.0).abs() < 1e-12);
        pool.release(fork);
    }

    #[test]
    fn pool_handles_mixed_sizes() {
        // A recycled buffer of the wrong size is simply overwritten.
        let small = State::zero(2);
        let big = State::zero(5);
        let pool: StatePool<State> = StatePool::new();
        let fork = pool.acquire_copy(&small);
        pool.release(fork);
        let fork = pool.acquire_copy(&big);
        assert_eq!(fork, big);
        pool.release(fork);
        let fork = pool.acquire_copy(&small);
        assert_eq!(fork, small);
        pool.release(fork);
        assert_eq!(pool.states_allocated(), 1);
    }

    #[test]
    fn outstanding_census_tracks_checkouts() {
        let checkpoint = State::zero(3);
        let pool: StatePool<State> = StatePool::new();
        assert_eq!(pool.outstanding(), 0);
        let a = pool.acquire_copy(&checkpoint);
        let b = pool.acquire_copy(&checkpoint);
        assert_eq!(pool.outstanding(), 2);
        pool.release(a);
        assert_eq!(pool.outstanding(), 1);
        pool.release(b);
        assert_eq!(pool.outstanding(), 0);
    }

    #[test]
    fn pack_leases_recycle_and_census_balances() {
        let mut checkpoint = State::zero(4);
        checkpoint.apply_1q(2, &gates::h());
        let pool: StatePool<State> = StatePool::new();
        let pack = pool.lease_pack(&checkpoint, 4).expect("dense packs");
        assert_eq!(pack.width(), 4);
        assert_eq!(pool.packs_outstanding(), 1);
        pool.release_pack(pack);
        assert_eq!(pool.packs_outstanding(), 0);
        // A second lease (different width) recycles the buffer.
        let pack = pool.lease_pack(&checkpoint, 2).expect("dense packs");
        assert_eq!(pack.width(), 2);
        for k in 0..2 {
            for i in 0..checkpoint.dim() {
                assert_eq!(
                    pack.amplitude(i, k).re.to_bits(),
                    checkpoint.amplitude(i).re.to_bits()
                );
            }
        }
        pool.release_pack(pack);
        assert_eq!(pool.packs_leased(), 2);
        assert_eq!(pool.packed_lanes(), 6);
        // Stabilizer backends have no packed form.
        use crate::stabilizer::StabilizerState;
        let tableau_pool: StatePool<StabilizerState> = StatePool::new();
        let tableau = StabilizerState::zero(4).unwrap();
        assert!(tableau_pool.lease_pack(&tableau, 4).is_none());
        assert_eq!(tableau_pool.packs_leased(), 0);
    }

    #[test]
    fn concurrent_checkouts_allocate_at_peak() {
        let checkpoint = State::zero(3);
        let pool: StatePool<State> = StatePool::new();
        let a = pool.acquire_copy(&checkpoint);
        let b = pool.acquire_copy(&checkpoint);
        assert_eq!(pool.states_allocated(), 2);
        pool.release(a);
        pool.release(b);
        let c = pool.acquire_copy(&checkpoint);
        let d = pool.acquire_copy(&checkpoint);
        assert_eq!(pool.states_allocated(), 2);
        pool.release(c);
        pool.release(d);
    }
}
