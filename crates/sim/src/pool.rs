//! A reusable buffer pool for simulator states.
//!
//! The trajectory-tree ensemble engine forks every distinct noisy
//! trajectory from an ideal checkpoint: clone the frontier state, apply
//! the trajectory's first fault, replay its suffix, measure, discard.
//! Allocating a fresh state per fork would put an `O(2ⁿ)` (or `O(n²)`
//! for the tableau) allocation on the hot path for every unique
//! trajectory; the [`StatePool`] instead recycles returned buffers
//! through [`SimBackend::copy_from`], so steady-state forking is a
//! `memcpy` and the allocation count is bounded by the peak number of
//! simultaneously live forks — a number the engine controls (one in
//! serial mode, one replay wave in parallel mode), not the shot count.
//!
//! The pool is deliberately dumb: a mutex-guarded free list. Checkouts
//! happen once per *unique trajectory* (not per shot, not per gate), so
//! contention is negligible next to the suffix replay each checkout
//! pays for.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::backend::SimBackend;

/// A free list of backend states, recycled across trajectory forks.
///
/// ```
/// use qdb_sim::{pool::StatePool, SimBackend, State};
///
/// let checkpoint = State::zero(3);
/// let pool: StatePool<State> = StatePool::new();
/// let fork = pool.acquire_copy(&checkpoint);   // allocates (pool empty)
/// pool.release(fork);
/// let fork = pool.acquire_copy(&checkpoint);   // recycles: no allocation
/// assert_eq!(fork, checkpoint);
/// assert_eq!(pool.states_allocated(), 1);
/// # pool.release(fork);
/// ```
#[derive(Debug, Default)]
pub struct StatePool<B> {
    free: Mutex<Vec<B>>,
    allocated: AtomicUsize,
    outstanding: AtomicUsize,
}

impl<B: SimBackend> StatePool<B> {
    /// An empty pool.
    #[must_use]
    pub fn new() -> Self {
        Self {
            free: Mutex::new(Vec::new()),
            allocated: AtomicUsize::new(0),
            outstanding: AtomicUsize::new(0),
        }
    }

    /// Check out a state holding an exact copy of `source`.
    ///
    /// Reuses a released buffer via [`SimBackend::copy_from`] when one
    /// is available, otherwise clones `source` fresh (counted by
    /// [`states_allocated`](StatePool::states_allocated)). Either way
    /// the result is bit-for-bit `source`.
    pub fn acquire_copy(&self, source: &B) -> B {
        self.outstanding.fetch_add(1, Ordering::Relaxed);
        let recycled = self.free.lock().expect("state pool lock").pop();
        match recycled {
            Some(mut state) => {
                state.copy_from(source);
                state
            }
            None => {
                self.allocated.fetch_add(1, Ordering::Relaxed);
                source.clone()
            }
        }
    }

    /// Return a state to the free list for future
    /// [`acquire_copy`](StatePool::acquire_copy) calls to recycle.
    pub fn release(&self, state: B) {
        self.outstanding.fetch_sub(1, Ordering::Relaxed);
        self.free.lock().expect("state pool lock").push(state);
    }

    /// Number of fresh allocations this pool has performed — its peak
    /// simultaneous checkout count. The trajectory-tree benchmarks
    /// assert this stays `O(1)` in the shot count.
    #[must_use]
    pub fn states_allocated(&self) -> usize {
        self.allocated.load(Ordering::Relaxed)
    }

    /// Number of states currently checked out (acquired but not yet
    /// released). The execution-governor tests assert this census
    /// returns to zero on every exit path — normal completion, budget
    /// trips, and injected faults alike — proving no fork buffer leaks
    /// when a run is cut short.
    #[must_use]
    pub fn outstanding(&self) -> usize {
        self.outstanding.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gates;
    use crate::state::State;

    #[test]
    fn pool_recycles_instead_of_allocating() {
        let mut checkpoint = State::zero(4);
        checkpoint.apply_1q(0, &gates::h());
        let pool: StatePool<State> = StatePool::new();
        for round in 0..16 {
            let fork = pool.acquire_copy(&checkpoint);
            assert_eq!(fork, checkpoint, "round {round}");
            pool.release(fork);
        }
        assert_eq!(pool.states_allocated(), 1);
    }

    #[test]
    fn pool_copies_are_bit_exact_and_independent() {
        let mut checkpoint = State::zero(3);
        checkpoint.apply_1q(1, &gates::h());
        checkpoint.apply_1q(1, &gates::t());
        let pool: StatePool<State> = StatePool::new();
        let mut fork = pool.acquire_copy(&checkpoint);
        for i in 0..checkpoint.dim() {
            assert_eq!(
                fork.amplitude(i).re.to_bits(),
                checkpoint.amplitude(i).re.to_bits()
            );
            assert_eq!(
                fork.amplitude(i).im.to_bits(),
                checkpoint.amplitude(i).im.to_bits()
            );
        }
        // Counters ride along (a fork has undergone the prefix's work).
        assert_eq!(fork.gate_ops(), checkpoint.gate_ops());
        // Mutating the fork leaves the checkpoint alone.
        fork.apply_1q(0, &gates::x());
        assert!((checkpoint.probability(1) - 0.0).abs() < 1e-12);
        pool.release(fork);
    }

    #[test]
    fn pool_handles_mixed_sizes() {
        // A recycled buffer of the wrong size is simply overwritten.
        let small = State::zero(2);
        let big = State::zero(5);
        let pool: StatePool<State> = StatePool::new();
        let fork = pool.acquire_copy(&small);
        pool.release(fork);
        let fork = pool.acquire_copy(&big);
        assert_eq!(fork, big);
        pool.release(fork);
        let fork = pool.acquire_copy(&small);
        assert_eq!(fork, small);
        pool.release(fork);
        assert_eq!(pool.states_allocated(), 1);
    }

    #[test]
    fn outstanding_census_tracks_checkouts() {
        let checkpoint = State::zero(3);
        let pool: StatePool<State> = StatePool::new();
        assert_eq!(pool.outstanding(), 0);
        let a = pool.acquire_copy(&checkpoint);
        let b = pool.acquire_copy(&checkpoint);
        assert_eq!(pool.outstanding(), 2);
        pool.release(a);
        assert_eq!(pool.outstanding(), 1);
        pool.release(b);
        assert_eq!(pool.outstanding(), 0);
    }

    #[test]
    fn concurrent_checkouts_allocate_at_peak() {
        let checkpoint = State::zero(3);
        let pool: StatePool<State> = StatePool::new();
        let a = pool.acquire_copy(&checkpoint);
        let b = pool.acquire_copy(&checkpoint);
        assert_eq!(pool.states_allocated(), 2);
        pool.release(a);
        pool.release(b);
        let c = pool.acquire_copy(&checkpoint);
        let d = pool.acquire_copy(&checkpoint);
        assert_eq!(pool.states_allocated(), 2);
        pool.release(c);
        pool.release(d);
    }
}
