//! Specialized gate kernels and control-subspace enumeration.
//!
//! The generic entry points on [`State`] treat every gate the same way:
//! [`State::apply_controlled_1q`] scans half the basis indices and
//! discards the ones whose control bits don't match, and
//! [`State::swap`] / [`State::apply_controlled_swap`] scan all of them.
//! That is the right *reference* semantics, but the hot path of the
//! ensemble engine applies the same few gates millions of times, so this
//! module provides kernels specialized by the 2×2 matrix's sparsity
//! structure ([`classify`]) and by control count:
//!
//! * [`State::apply_diagonal`] — `diag(d₀, d₁)` gates (`z`, `s`, `t`,
//!   `rz`, `phase`): two scalar multiplies per pair, no cross terms;
//! * [`State::apply_antidiagonal`] — anti-diagonal gates (`x`, `y`):
//!   a pure amplitude permutation with per-branch phases;
//! * [`State::apply_1q_subspace`] — the dense 2×2 kernel, but touching
//!   only the control-satisfying subspace;
//! * [`State::apply_swap_subspace`] — (controlled) swap enumerating
//!   exactly the index pairs it exchanges.
//!
//! Every kernel *enumerates* the `2ⁿ⁻¹⁻ᶜ` (or `2ⁿ⁻²⁻ᶜ` for swaps)
//! indices it touches instead of filtering the full index space by mask
//! test: a Toffoli visits `2ⁿ⁻³` pairs instead of scanning `2ⁿ⁻¹`
//! candidates. [`State::index_ops`] counts exactly this difference.
//!
//! Enumeration is *run-based*: every bit position below the lowest
//! fixed (control or target) bit is free, so the touched indices come
//! in contiguous runs of length `2^lowest`. The kernels step from run
//! to run with the carry trick (`base = ((base | step) + 1) & !step`
//! where `step` pre-fills the fixed bits *and* the in-run bits with
//! ones) and sweep each run as a pair of contiguous slices. The slice
//! form matters: the inner loops are bounds-check-free iterator zips
//! over disjoint subslices, which LLVM auto-vectorizes — the serial
//! per-index carry chain they replace was latency-bound at a few
//! cycles per amplitude pair.
//!
//! ## Equivalence contract
//!
//! Each kernel touches the same amplitude pairs as its generic
//! counterpart, in the same ascending order. The subspace kernels
//! ([`State::apply_1q_subspace`], [`State::apply_swap_subspace`])
//! perform the *identical* arithmetic on each pair, so their results are
//! bit-for-bit identical to the generic path. The diagonal and
//! anti-diagonal kernels skip the structurally-zero products the dense
//! kernel still computes (`m₀₁·b` when `m₀₁ = 0`); adding such a term
//! only ever normalizes the sign of an exactly-zero component
//! (`-0.0 + 0.0 = +0.0`), so their results are **value-identical**
//! (`==` on every component, hence [`State`] equality holds and every
//! probability is bit-identical) but a zero amplitude component may
//! carry the opposite sign. No downstream computation — probabilities,
//! sampling, inner products, reports — can observe the difference.
//!
//! ## Amplitude-parallel chunking
//!
//! When a state is opted in ([`State::set_intra_parallel`]), is at or
//! above [`INTRA_PAR_MIN_QUBITS`], and more than one rayon worker is
//! configured, each kernel partitions its *run space* into contiguous
//! chunks and dispatches them across workers
//! ([`rayon::dispatch_chunks`]). Runs are disjoint and every run's
//! work is self-contained (the same pairs, the same in-run order, the
//! same arithmetic as the serial loop — a chunk seeks to its first run
//! with `Subspace::base_at` and then steps with the identical carry
//! trick), so the amplitudes produced are **bit-for-bit identical at
//! any thread count**; only wall-clock changes. Serial invocations and
//! below-threshold states run the exact safe-slice loops documented
//! above.

use crate::complex::Complex;
use crate::gates::Matrix2;
use crate::state::State;

/// States below this many qubits never chunk their kernels: at
/// `2¹⁴ = 16384` amplitudes a full sweep is a few microseconds, which
/// thread dispatch overhead would swamp. At and above this threshold
/// (`2¹⁵` amplitudes, ½ MiB) chunking wins on multi-core hosts.
pub const INTRA_PAR_MIN_QUBITS: usize = 15;

/// The sparsity structure of a 2×2 unitary, used by the lowering layer
/// in `qdb-circuit` to pick a kernel once per compiled instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatrixClass {
    /// Both off-diagonal entries are exactly zero (`z`, `s`, `t`, `rz`,
    /// `phase`, and their adjoints).
    Diagonal,
    /// Both diagonal entries are exactly zero (`x`, `y`).
    AntiDiagonal,
    /// No exploitable structure (`h`, generic rotations, fused runs).
    General,
}

/// Classify a 2×2 unitary by exact-zero structure.
///
/// The test is *exact* (`== 0.0`), which is what the named gate
/// constructors in [`gates`](crate::gates) produce; a matrix that is
/// merely numerically close to diagonal is classified [`General`] so
/// specialization never changes results.
///
/// [`General`]: MatrixClass::General
#[must_use]
pub fn classify(m: &Matrix2) -> MatrixClass {
    let m = &m.0;
    if m[0][1] == Complex::ZERO && m[1][0] == Complex::ZERO {
        MatrixClass::Diagonal
    } else if m[0][0] == Complex::ZERO && m[1][1] == Complex::ZERO {
        MatrixClass::AntiDiagonal
    } else {
        MatrixClass::General
    }
}

/// The run-based subspace-enumeration scaffolding for a kernel with
/// fixed bit positions `fixed` (controls + targets) over `dim` basis
/// indices.
///
/// The indices to touch are exactly those with every fixed bit zero
/// (the control bits are OR-ed back in by the caller), in ascending
/// order. All positions below the lowest fixed bit are free, so the
/// set decomposes into `runs` contiguous runs of `run_len = 2^lowest`
/// indices each. Successive run bases are enumerated with the carry
/// trick — `base = ((base | step) + 1) & !step` with the fixed bits
/// *and* the in-run low bits pre-filled with ones, so the `+ 1`
/// carries straight over both — three ALU ops per run, while the run
/// interiors are plain contiguous slices the inner loops can zip over
/// without bounds checks.
pub(crate) struct Subspace {
    /// Carry-trick step mask: fixed bits plus the in-run low bits.
    pub(crate) step: usize,
    /// The control bits, OR-ed into every enumerated index.
    pub(crate) cmask: usize,
    /// Length of each contiguous run (`2^lowest_fixed_bit`).
    pub(crate) run_len: usize,
    /// Number of runs covering the subspace.
    pub(crate) runs: usize,
}

impl Subspace {
    /// Build the enumeration for `count` touched representatives over
    /// fixed mask `fixed` (`count` is `2ⁿ⁻¹⁻ᶜ` for single-target
    /// kernels, `2ⁿ⁻²⁻ᶜ` for swaps).
    pub(crate) fn new(fixed: usize, cmask: usize, count: usize) -> Self {
        let low = fixed.trailing_zeros() as usize;
        let run_len = 1usize << low;
        Self {
            step: fixed | (run_len - 1),
            cmask,
            run_len,
            runs: count >> low,
        }
    }

    #[inline]
    pub(crate) fn next(&self, base: usize) -> usize {
        ((base | self.step) + 1) & !self.step
    }

    /// The base index of run `k` — the value `k` applications of
    /// [`next`](Subspace::next) reach from zero.
    ///
    /// The carry trick counts through the free (zero) bits of `step`
    /// in ascending position order, so run `k`'s base is `k` with its
    /// bits deposited into those positions. This lets a chunk worker
    /// seek straight to its first run instead of replaying the carry
    /// chain from zero.
    fn base_at(&self, mut k: usize) -> usize {
        let mut free = !self.step;
        let mut base = 0usize;
        while k != 0 {
            let bit = free & free.wrapping_neg();
            if k & 1 == 1 {
                base |= bit;
            }
            free &= !bit;
            k >>= 1;
        }
        base
    }
}

/// Raw pointer to the amplitude buffer, shared across chunk workers.
///
/// Sharing is sound because the run enumeration is a *partition*: each
/// worker owns a disjoint contiguous range of run indices, every run is
/// visited by exactly one worker, and a run's slices never overlap any
/// other run's (run bases differ in bits at or above the lowest fixed
/// bit while each slice spans only the `run_len = 2^lowest` indices
/// below it; within a pair, the `target = 1` slice starts `tmask ≥
/// run_len` above the `target = 0` slice).
#[derive(Clone, Copy)]
struct SharedAmps(*mut Complex);

unsafe impl Send for SharedAmps {}
unsafe impl Sync for SharedAmps {}

impl SharedAmps {
    /// The contiguous run `[start, start + len)` as a mutable slice.
    ///
    /// # Safety
    ///
    /// `[start, start + len)` must be in bounds of the buffer and no
    /// other live reference (on any thread) may overlap it — which the
    /// run-disjointness argument above guarantees when each run is
    /// handed to exactly one worker.
    #[inline]
    #[allow(clippy::mut_from_ref)]
    unsafe fn run<'a>(&self, start: usize, len: usize) -> &'a mut [Complex] {
        unsafe { std::slice::from_raw_parts_mut(self.0.add(start), len) }
    }
}

/// Apply `body` to every `(target = 0, target = 1)` run pair of `sub`,
/// chunking the run space across rayon workers when `workers > 1`.
/// Returns the number of parallel chunks dispatched (0 when serial).
///
/// The chunk *boundaries* are the only thing that varies with the
/// worker count: every chunk seeks to its first run with
/// [`Subspace::base_at`] and then steps with the same carry trick the
/// serial loop uses, so each run sees the same base, the same slices,
/// and the same per-pair arithmetic in the same in-run order — results
/// are bit-for-bit identical across thread counts.
fn pair_run_chunks<F>(
    workers: usize,
    sub: &Subspace,
    tmask: usize,
    amps: &mut [Complex],
    body: F,
) -> usize
where
    F: Fn(&mut [Complex], &mut [Complex]) + Sync,
{
    if workers > 1 && sub.runs > 1 {
        let shared = SharedAmps(amps.as_mut_ptr());
        rayon::dispatch_chunks(sub.runs, |chunk| {
            let mut base = sub.base_at(chunk.start);
            for _ in chunk {
                let start0 = base | sub.cmask;
                // SAFETY: this chunk owns runs `chunk.start..chunk.end`
                // exclusively and the two slices of a pair are disjoint
                // (see `SharedAmps`).
                let run0 = unsafe { shared.run(start0, sub.run_len) };
                let run1 = unsafe { shared.run(start0 | tmask, sub.run_len) };
                body(run0, run1);
                base = sub.next(base);
            }
        })
    } else {
        let mut base = 0usize;
        for _ in 0..sub.runs {
            let (run0, run1) = pair_runs(amps, base | sub.cmask, tmask, sub.run_len);
            body(run0, run1);
            base = sub.next(base);
        }
        0
    }
}

/// The two disjoint contiguous runs of one enumeration step: the
/// `target = 0` run starting at `base | cmask` and the `target = 1` run
/// `tmask` above it. `run_len ≤ tmask` always holds (the target bit is
/// fixed, so every free in-run bit lies below it), hence the runs never
/// overlap and a `split_at_mut` at the second run's start yields two
/// independently borrowable slices.
#[inline]
fn pair_runs(
    amps: &mut [Complex],
    start0: usize,
    tmask: usize,
    run_len: usize,
) -> (&mut [Complex], &mut [Complex]) {
    let start1 = start0 | tmask;
    let (lo, hi) = amps.split_at_mut(start1);
    (&mut lo[start0..start0 + run_len], &mut hi[..run_len])
}

impl State {
    /// Validate controls/target and build the enumeration scaffolding.
    fn control_subspace(&self, controls: &[usize], target: usize) -> Subspace {
        self.check_qubit(target);
        let mut fixed = 1usize << target;
        let mut cmask = 0usize;
        for &c in controls {
            self.check_qubit(c);
            assert!(c != target, "control {c} equals target");
            assert!(
                fixed & (1 << c) == 0,
                "qubit {c} used twice in one kernel call"
            );
            fixed |= 1 << c;
            cmask |= 1 << c;
        }
        Subspace::new(fixed, cmask, self.dim() >> (1 + controls.len()))
    }

    /// Worker count the kernels may chunk over: 1 (serial) unless this
    /// state opted in via [`State::set_intra_parallel`], is at or above
    /// [`INTRA_PAR_MIN_QUBITS`], and rayon has more than one worker
    /// (`RAYON_NUM_THREADS` is re-read per call, as everywhere else in
    /// the workspace).
    fn kernel_workers(&self) -> usize {
        if self.intra_parallel() && self.num_qubits() >= INTRA_PAR_MIN_QUBITS {
            rayon::current_num_threads()
        } else {
            1
        }
    }

    /// Apply `diag(d0, d1)` to `target`, conditioned on all `controls`
    /// being `|1⟩`: `2ⁿ⁻¹⁻ᶜ` pairs of scalar multiplies, no cross
    /// terms, no index filtering (see the
    /// [module docs](crate::kernels) for the equivalence contract).
    ///
    /// # Panics
    ///
    /// Panics if any qubit is out of range or repeats.
    pub fn apply_diagonal(&mut self, controls: &[usize], target: usize, d0: Complex, d1: Complex) {
        let sub = self.control_subspace(controls, target);
        let tmask = 1usize << target;
        let pairs = self.dim() >> (1 + controls.len());
        self.record_gate_op();
        self.record_index_ops(pairs as u64);
        let workers = self.kernel_workers();
        let amps = self.amps_mut();
        let chunks = if d0 == Complex::ONE {
            // Phase-type gates (`s`, `t`, `phase`, every `cphase` /
            // `ccphase` of the QFT ladders): the |…0⟩ branch is
            // untouched, so only the set branch is multiplied.
            let scale = |run1: &mut [Complex]| {
                for a in run1 {
                    *a = d1 * *a;
                }
            };
            if workers > 1 && sub.runs > 1 {
                let shared = SharedAmps(amps.as_mut_ptr());
                rayon::dispatch_chunks(sub.runs, |chunk| {
                    let mut base = sub.base_at(chunk.start);
                    for _ in chunk {
                        let start1 = base | sub.cmask | tmask;
                        // SAFETY: this chunk owns its runs exclusively
                        // (see `SharedAmps`).
                        scale(unsafe { shared.run(start1, sub.run_len) });
                        base = sub.next(base);
                    }
                })
            } else {
                let mut base = 0usize;
                for _ in 0..sub.runs {
                    let start1 = base | sub.cmask | tmask;
                    scale(&mut amps[start1..start1 + sub.run_len]);
                    base = sub.next(base);
                }
                0
            }
        } else {
            pair_run_chunks(workers, &sub, tmask, amps, |run0, run1| {
                for (a, b) in run0.iter_mut().zip(run1.iter_mut()) {
                    *a = d0 * *a;
                    *b = d1 * *b;
                }
            })
        };
        if chunks > 0 {
            self.record_par_chunks(chunks as u64);
        }
    }

    /// Apply the anti-diagonal gate `[[0, a01], [a10, 0]]` to `target`,
    /// conditioned on all `controls` being `|1⟩`: a pure cross-swap of
    /// each amplitude pair with per-branch phases (`x` is
    /// `a01 = a10 = 1`, `y` is `a01 = −i, a10 = i`).
    ///
    /// # Panics
    ///
    /// Panics if any qubit is out of range or repeats.
    pub fn apply_antidiagonal(
        &mut self,
        controls: &[usize],
        target: usize,
        a01: Complex,
        a10: Complex,
    ) {
        let sub = self.control_subspace(controls, target);
        let tmask = 1usize << target;
        let pairs = self.dim() >> (1 + controls.len());
        self.record_gate_op();
        self.record_index_ops(pairs as u64);
        let workers = self.kernel_workers();
        let pure_x = a01 == Complex::ONE && a10 == Complex::ONE;
        let amps = self.amps_mut();
        let chunks = pair_run_chunks(workers, &sub, tmask, amps, |run0, run1| {
            if pure_x {
                // X-type gates (`x`, CNOT, Toffoli): a pure amplitude
                // permutation, no arithmetic at all.
                run0.swap_with_slice(run1);
            } else {
                for (x, y) in run0.iter_mut().zip(run1.iter_mut()) {
                    let a = *x;
                    let b = *y;
                    *x = a01 * b;
                    *y = a10 * a;
                }
            }
        });
        if chunks > 0 {
            self.record_par_chunks(chunks as u64);
        }
    }

    /// Apply a dense 2×2 unitary to `target`, conditioned on all
    /// `controls` being `|1⟩`, visiting only the control-satisfying
    /// subspace.
    ///
    /// Performs exactly the arithmetic of
    /// [`State::apply_controlled_1q`] on exactly the pairs that path
    /// touches (bit-for-bit identical results) while enumerating
    /// `2ⁿ⁻¹⁻ᶜ` pairs instead of scanning `2ⁿ⁻¹` candidates.
    ///
    /// # Panics
    ///
    /// Panics if any qubit is out of range or repeats.
    pub fn apply_1q_subspace(&mut self, controls: &[usize], target: usize, m: &Matrix2) {
        let sub = self.control_subspace(controls, target);
        let tmask = 1usize << target;
        let pairs = self.dim() >> (1 + controls.len());
        self.record_gate_op();
        self.record_index_ops(pairs as u64);
        let workers = self.kernel_workers();
        let m = m.0;
        let amps = self.amps_mut();
        let chunks = pair_run_chunks(workers, &sub, tmask, amps, |run0, run1| {
            for (x, y) in run0.iter_mut().zip(run1.iter_mut()) {
                let a = *x;
                let b = *y;
                *x = m[0][0] * a + m[0][1] * b;
                *y = m[1][0] * a + m[1][1] * b;
            }
        });
        if chunks > 0 {
            self.record_par_chunks(chunks as u64);
        }
    }

    /// Swap qubits `a` and `b`, conditioned on all `controls` being
    /// `|1⟩`, enumerating exactly the `2ⁿ⁻²⁻ᶜ` index pairs it
    /// exchanges (the generic [`State::swap`] /
    /// [`State::apply_controlled_swap`] scan all `2ⁿ` indices).
    ///
    /// Bit-for-bit identical to the generic path: the same disjoint
    /// transpositions are applied (in ascending order of the
    /// `bit_a = 1, bit_b = 0` representative).
    ///
    /// # Panics
    ///
    /// Panics if qubits are out of range, `a == b`, or a control
    /// overlaps a swap target.
    pub fn apply_swap_subspace(&mut self, controls: &[usize], a: usize, b: usize) {
        self.check_qubit(a);
        self.check_qubit(b);
        assert!(a != b, "swap targets must differ");
        let (lo, hi) = (a.min(b), a.max(b));
        let lo_mask = 1usize << lo;
        let hi_mask = 1usize << hi;
        let mut fixed = lo_mask | hi_mask;
        let mut cmask = 0usize;
        for &c in controls {
            self.check_qubit(c);
            assert!(c != a && c != b, "control {c} overlaps swap target");
            assert!(
                fixed & (1 << c) == 0,
                "qubit {c} used twice in one kernel call"
            );
            fixed |= 1 << c;
            cmask |= 1 << c;
        }
        let count = self.dim() >> (2 + controls.len());
        let sub = Subspace::new(fixed, cmask, count);
        self.record_gate_op();
        self.record_index_ops(count as u64);
        let workers = self.kernel_workers();
        let amps = self.amps_mut();
        let chunks = if workers > 1 && sub.runs > 1 {
            let shared = SharedAmps(amps.as_mut_ptr());
            rayon::dispatch_chunks(sub.runs, |chunk| {
                let mut base = sub.base_at(chunk.start);
                for _ in chunk {
                    let start_i = base | sub.cmask | lo_mask;
                    let start_j = (start_i & !lo_mask) | hi_mask;
                    // SAFETY: this chunk owns its runs exclusively; the
                    // partner run starts strictly above the
                    // representative and `run_len ≤ lo_mask < hi_mask`,
                    // so the two slices never overlap (see `SharedAmps`).
                    let run_i = unsafe { shared.run(start_i, sub.run_len) };
                    let run_j = unsafe { shared.run(start_j, sub.run_len) };
                    run_i.swap_with_slice(run_j);
                    base = sub.next(base);
                }
            })
        } else {
            let mut base = 0usize;
            for _ in 0..sub.runs {
                // Representative run: controls 1, low bit 1, high bit 0 —
                // swapped with the run at low bit 0, high bit 1. Both runs
                // are contiguous (`run_len ≤ lo_mask < hi_mask`) and the
                // partner run starts strictly above the representative.
                let start_i = base | sub.cmask | lo_mask;
                let start_j = (start_i & !lo_mask) | hi_mask;
                let (lo, hi) = amps.split_at_mut(start_j);
                lo[start_i..start_i + sub.run_len].swap_with_slice(&mut hi[..sub.run_len]);
                base = sub.next(base);
            }
            0
        };
        if chunks > 0 {
            self.record_par_chunks(chunks as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gates;
    use crate::state::State;

    /// A fixed non-trivial 4-qubit state with every amplitude nonzero.
    fn dense_state() -> State {
        let mut s = State::zero(4);
        for q in 0..4 {
            s.apply_1q(q, &gates::h());
            s.apply_1q(q, &gates::t());
        }
        s.apply_controlled_1q(&[0], 2, &gates::ry(0.37));
        s.apply_controlled_1q(&[3], 1, &gates::rx(-1.1));
        s.reset_gate_ops();
        s.reset_index_ops();
        s
    }

    fn assert_bits_identical(a: &State, b: &State) {
        for i in 0..a.dim() {
            assert_eq!(
                a.amplitude(i).re.to_bits(),
                b.amplitude(i).re.to_bits(),
                "re mismatch at {i}"
            );
            assert_eq!(
                a.amplitude(i).im.to_bits(),
                b.amplitude(i).im.to_bits(),
                "im mismatch at {i}"
            );
        }
    }

    #[test]
    fn classify_named_gates() {
        for g in [
            gates::z(),
            gates::s(),
            gates::sdg(),
            gates::t(),
            gates::tdg(),
            gates::rz(0.7),
            gates::phase(-0.3),
        ] {
            assert_eq!(classify(&g), MatrixClass::Diagonal);
        }
        assert_eq!(classify(&gates::x()), MatrixClass::AntiDiagonal);
        assert_eq!(classify(&gates::y()), MatrixClass::AntiDiagonal);
        for g in [gates::h(), gates::rx(0.4), gates::ry(1.2)] {
            assert_eq!(classify(&g), MatrixClass::General);
        }
        // rx(π) is anti-diagonal only up to numerically-exact zeros on
        // the diagonal: cos(π/2) is not exactly 0.0 in f64, so it must
        // stay General.
        assert_eq!(
            classify(&gates::rx(std::f64::consts::PI)),
            MatrixClass::General
        );
    }

    #[test]
    fn diagonal_kernel_matches_generic_values() {
        for controls in [vec![], vec![1], vec![1, 3]] {
            let g = gates::rz(0.9);
            let mut fast = dense_state();
            fast.apply_diagonal(&controls, 2, g.0[0][0], g.0[1][1]);
            let mut reference = dense_state();
            reference.apply_controlled_1q(&controls, 2, &g);
            assert_eq!(fast, reference, "controls {controls:?}");
        }
    }

    #[test]
    fn antidiagonal_kernel_matches_generic_values() {
        for controls in [vec![], vec![0], vec![0, 3]] {
            let g = gates::y();
            let mut fast = dense_state();
            fast.apply_antidiagonal(&controls, 1, g.0[0][1], g.0[1][0]);
            let mut reference = dense_state();
            reference.apply_controlled_1q(&controls, 1, &g);
            assert_eq!(fast, reference, "controls {controls:?}");
        }
    }

    #[test]
    fn subspace_dense_kernel_is_bit_identical() {
        for controls in [vec![], vec![0], vec![0, 1], vec![3, 0, 1]] {
            let g = gates::u3(0.3, 1.1, -0.4);
            let mut fast = dense_state();
            fast.apply_1q_subspace(&controls, 2, &g);
            let mut reference = dense_state();
            reference.apply_controlled_1q(&controls, 2, &g);
            assert_bits_identical(&fast, &reference);
        }
    }

    #[test]
    fn subspace_swap_is_bit_identical() {
        for controls in [vec![], vec![2], vec![2, 3]] {
            let mut fast = dense_state();
            fast.apply_swap_subspace(&controls, 0, 1);
            let mut reference = dense_state();
            if controls.is_empty() {
                reference.swap(0, 1);
            } else {
                reference.apply_controlled_swap(&controls, 0, 1);
            }
            assert_bits_identical(&fast, &reference);
        }
        // Reversed qubit order is the same operation.
        let mut ab = dense_state();
        ab.apply_swap_subspace(&[3], 0, 2);
        let mut ba = dense_state();
        ba.apply_swap_subspace(&[3], 2, 0);
        assert_bits_identical(&ab, &ba);
    }

    #[test]
    fn kernels_do_reduced_index_work() {
        // n = 4 (dim = 16). Generic controlled scan: 8 candidates
        // regardless of controls; subspace kernels shrink with each
        // control. Generic swap scans 16; subspace swap visits 4.
        let mut s = dense_state();
        s.apply_1q_subspace(&[], 0, &gates::h());
        assert_eq!(s.index_ops(), 8); // same as apply_1q: all pairs
        s.apply_1q_subspace(&[1], 0, &gates::h());
        assert_eq!(s.index_ops(), 8 + 4);
        s.apply_1q_subspace(&[1, 2], 0, &gates::h()); // Toffoli shape
        assert_eq!(s.index_ops(), 8 + 4 + 2);
        s.apply_diagonal(&[1, 2], 0, Complex::ONE, Complex::I);
        assert_eq!(s.index_ops(), 8 + 4 + 2 + 2);
        s.apply_antidiagonal(&[3], 0, Complex::ONE, Complex::ONE);
        assert_eq!(s.index_ops(), 8 + 4 + 2 + 2 + 4);
        s.apply_swap_subspace(&[], 0, 1);
        assert_eq!(s.index_ops(), 8 + 4 + 2 + 2 + 4 + 4);
        s.apply_swap_subspace(&[2], 0, 1); // Fredkin shape
        assert_eq!(s.index_ops(), 8 + 4 + 2 + 2 + 4 + 4 + 2);
        assert_eq!(s.gate_ops(), 7);

        // The generic paths pay the full scan for the same gates.
        let mut generic = dense_state();
        generic.apply_controlled_1q(&[1, 2], 0, &gates::x());
        assert_eq!(generic.index_ops(), 8);
        generic.apply_controlled_swap(&[2], 0, 1);
        assert_eq!(generic.index_ops(), 8 + 16);
    }

    #[test]
    fn toffoli_truth_table_via_subspace() {
        for input in 0..8u64 {
            let mut s = State::basis(3, input).unwrap();
            s.apply_antidiagonal(&[0, 1], 2, Complex::ONE, Complex::ONE);
            let expected = if input & 0b11 == 0b11 {
                (input ^ 0b100) as usize
            } else {
                input as usize
            };
            assert!(
                (s.probability(expected) - 1.0).abs() < 1e-12,
                "input {input}"
            );
        }
    }

    /// Guards the `RAYON_NUM_THREADS` toggling below against the test
    /// harness running these tests concurrently.
    static ENV_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn base_at_matches_carry_enumeration() {
        // (fixed, cmask, count) shapes: plain 1q targets at several
        // positions, controlled kernels, and a swap-style double-fixed
        // mask, all over a 2¹⁰ space.
        for (fixed, cmask, count) in [
            (0b1usize, 0usize, 512),
            (0b100, 0, 512),
            (1 << 9, 0, 512),
            (0b10011, 0b10010, 128),
            (0b1100000, 0b0100000, 256),
            (0b0000110, 0, 256),
        ] {
            let sub = Subspace::new(fixed, cmask, count);
            let mut base = 0usize;
            for k in 0..sub.runs {
                assert_eq!(
                    sub.base_at(k),
                    base,
                    "run {k} of fixed {fixed:#b} cmask {cmask:#b}"
                );
                base = sub.next(base);
            }
        }
    }

    #[test]
    fn intra_parallel_kernels_are_bit_identical() {
        let _guard = ENV_LOCK.lock().unwrap();
        // 16 qubits is above INTRA_PAR_MIN_QUBITS, so with 4 workers
        // the opted-in state chunks every kernel.
        let drive = |s: &mut State| {
            for q in 0..16 {
                s.apply_1q_subspace(&[], q, &gates::h());
            }
            let t = gates::t();
            s.apply_diagonal(&[], 3, t.0[0][0], t.0[1][1]);
            let rz = gates::rz(0.9);
            s.apply_diagonal(&[5], 9, rz.0[0][0], rz.0[1][1]);
            s.apply_diagonal(&[2], 15, rz.0[0][0], rz.0[1][1]);
            s.apply_antidiagonal(&[1], 14, Complex::ONE, Complex::ONE);
            let y = gates::y();
            s.apply_antidiagonal(&[], 7, y.0[0][1], y.0[1][0]);
            s.apply_1q_subspace(&[0, 8], 12, &gates::u3(0.3, 1.1, -0.4));
            s.apply_swap_subspace(&[4], 6, 13);
            s.apply_swap_subspace(&[], 0, 15);
        };
        std::env::set_var("RAYON_NUM_THREADS", "4");
        let mut serial = State::zero(16);
        drive(&mut serial);
        let mut chunked = State::zero(16);
        chunked.set_intra_parallel(true);
        drive(&mut chunked);
        std::env::remove_var("RAYON_NUM_THREADS");
        assert_bits_identical(&serial, &chunked);
        assert_eq!(serial.par_chunks(), 0);
        assert!(chunked.par_chunks() > 0, "chunking never engaged");
        assert_eq!(serial.index_ops(), chunked.index_ops());
        assert_eq!(serial.gate_ops(), chunked.gate_ops());
    }

    #[test]
    fn small_states_stay_serial_even_when_opted_in() {
        let _guard = ENV_LOCK.lock().unwrap();
        std::env::set_var("RAYON_NUM_THREADS", "4");
        let mut s = dense_state(); // 4 qubits, far below the threshold
        s.set_intra_parallel(true);
        s.apply_1q_subspace(&[], 0, &gates::h());
        s.apply_diagonal(&[], 1, Complex::ONE, Complex::I);
        s.apply_swap_subspace(&[], 0, 1);
        std::env::remove_var("RAYON_NUM_THREADS");
        assert_eq!(s.par_chunks(), 0);
    }

    #[test]
    #[should_panic(expected = "used twice")]
    fn duplicate_control_panics() {
        dense_state().apply_1q_subspace(&[1, 1], 0, &gates::x());
    }

    #[test]
    #[should_panic(expected = "control 0 equals target")]
    fn control_equals_target_panics() {
        dense_state().apply_diagonal(&[0], 0, Complex::ONE, Complex::I);
    }

    #[test]
    #[should_panic(expected = "swap targets must differ")]
    fn swap_same_qubit_panics() {
        dense_state().apply_swap_subspace(&[], 1, 1);
    }

    #[test]
    #[should_panic(expected = "overlaps swap target")]
    fn swap_control_overlap_panics() {
        dense_state().apply_swap_subspace(&[0], 0, 1);
    }
}
