//! Specialized gate kernels and control-subspace enumeration.
//!
//! The generic entry points on [`State`] treat every gate the same way:
//! [`State::apply_controlled_1q`] scans half the basis indices and
//! discards the ones whose control bits don't match, and
//! [`State::swap`] / [`State::apply_controlled_swap`] scan all of them.
//! That is the right *reference* semantics, but the hot path of the
//! ensemble engine applies the same few gates millions of times, so this
//! module provides kernels specialized by the 2×2 matrix's sparsity
//! structure ([`classify`]) and by control count:
//!
//! * [`State::apply_diagonal`] — `diag(d₀, d₁)` gates (`z`, `s`, `t`,
//!   `rz`, `phase`): two scalar multiplies per pair, no cross terms;
//! * [`State::apply_antidiagonal`] — anti-diagonal gates (`x`, `y`):
//!   a pure amplitude permutation with per-branch phases;
//! * [`State::apply_1q_subspace`] — the dense 2×2 kernel, but touching
//!   only the control-satisfying subspace;
//! * [`State::apply_swap_subspace`] — (controlled) swap enumerating
//!   exactly the index pairs it exchanges.
//!
//! Every kernel *enumerates* the `2ⁿ⁻¹⁻ᶜ` (or `2ⁿ⁻²⁻ᶜ` for swaps)
//! indices it touches instead of filtering the full index space by mask
//! test: a Toffoli visits `2ⁿ⁻³` pairs instead of scanning `2ⁿ⁻¹`
//! candidates. [`State::index_ops`] counts exactly this difference.
//!
//! Enumeration is *run-based*: every bit position below the lowest
//! fixed (control or target) bit is free, so the touched indices come
//! in contiguous runs of length `2^lowest`. The kernels step from run
//! to run with the carry trick (`base = ((base | step) + 1) & !step`
//! where `step` pre-fills the fixed bits *and* the in-run bits with
//! ones) and sweep each run as a pair of contiguous slices. The slice
//! form matters: the inner loops are bounds-check-free iterator zips
//! over disjoint subslices, which LLVM auto-vectorizes — the serial
//! per-index carry chain they replace was latency-bound at a few
//! cycles per amplitude pair.
//!
//! ## Equivalence contract
//!
//! Each kernel touches the same amplitude pairs as its generic
//! counterpart, in the same ascending order. The subspace kernels
//! ([`State::apply_1q_subspace`], [`State::apply_swap_subspace`])
//! perform the *identical* arithmetic on each pair, so their results are
//! bit-for-bit identical to the generic path. The diagonal and
//! anti-diagonal kernels skip the structurally-zero products the dense
//! kernel still computes (`m₀₁·b` when `m₀₁ = 0`); adding such a term
//! only ever normalizes the sign of an exactly-zero component
//! (`-0.0 + 0.0 = +0.0`), so their results are **value-identical**
//! (`==` on every component, hence [`State`] equality holds and every
//! probability is bit-identical) but a zero amplitude component may
//! carry the opposite sign. No downstream computation — probabilities,
//! sampling, inner products, reports — can observe the difference.

use crate::complex::Complex;
use crate::gates::Matrix2;
use crate::state::State;

/// The sparsity structure of a 2×2 unitary, used by the lowering layer
/// in `qdb-circuit` to pick a kernel once per compiled instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatrixClass {
    /// Both off-diagonal entries are exactly zero (`z`, `s`, `t`, `rz`,
    /// `phase`, and their adjoints).
    Diagonal,
    /// Both diagonal entries are exactly zero (`x`, `y`).
    AntiDiagonal,
    /// No exploitable structure (`h`, generic rotations, fused runs).
    General,
}

/// Classify a 2×2 unitary by exact-zero structure.
///
/// The test is *exact* (`== 0.0`), which is what the named gate
/// constructors in [`gates`](crate::gates) produce; a matrix that is
/// merely numerically close to diagonal is classified [`General`] so
/// specialization never changes results.
///
/// [`General`]: MatrixClass::General
#[must_use]
pub fn classify(m: &Matrix2) -> MatrixClass {
    let m = &m.0;
    if m[0][1] == Complex::ZERO && m[1][0] == Complex::ZERO {
        MatrixClass::Diagonal
    } else if m[0][0] == Complex::ZERO && m[1][1] == Complex::ZERO {
        MatrixClass::AntiDiagonal
    } else {
        MatrixClass::General
    }
}

/// The run-based subspace-enumeration scaffolding for a kernel with
/// fixed bit positions `fixed` (controls + targets) over `dim` basis
/// indices.
///
/// The indices to touch are exactly those with every fixed bit zero
/// (the control bits are OR-ed back in by the caller), in ascending
/// order. All positions below the lowest fixed bit are free, so the
/// set decomposes into `runs` contiguous runs of `run_len = 2^lowest`
/// indices each. Successive run bases are enumerated with the carry
/// trick — `base = ((base | step) + 1) & !step` with the fixed bits
/// *and* the in-run low bits pre-filled with ones, so the `+ 1`
/// carries straight over both — three ALU ops per run, while the run
/// interiors are plain contiguous slices the inner loops can zip over
/// without bounds checks.
struct Subspace {
    /// Carry-trick step mask: fixed bits plus the in-run low bits.
    step: usize,
    /// The control bits, OR-ed into every enumerated index.
    cmask: usize,
    /// Length of each contiguous run (`2^lowest_fixed_bit`).
    run_len: usize,
    /// Number of runs covering the subspace.
    runs: usize,
}

impl Subspace {
    /// Build the enumeration for `count` touched representatives over
    /// fixed mask `fixed` (`count` is `2ⁿ⁻¹⁻ᶜ` for single-target
    /// kernels, `2ⁿ⁻²⁻ᶜ` for swaps).
    fn new(fixed: usize, cmask: usize, count: usize) -> Self {
        let low = fixed.trailing_zeros() as usize;
        let run_len = 1usize << low;
        Self {
            step: fixed | (run_len - 1),
            cmask,
            run_len,
            runs: count >> low,
        }
    }

    #[inline]
    fn next(&self, base: usize) -> usize {
        ((base | self.step) + 1) & !self.step
    }
}

/// The two disjoint contiguous runs of one enumeration step: the
/// `target = 0` run starting at `base | cmask` and the `target = 1` run
/// `tmask` above it. `run_len ≤ tmask` always holds (the target bit is
/// fixed, so every free in-run bit lies below it), hence the runs never
/// overlap and a `split_at_mut` at the second run's start yields two
/// independently borrowable slices.
#[inline]
fn pair_runs(
    amps: &mut [Complex],
    start0: usize,
    tmask: usize,
    run_len: usize,
) -> (&mut [Complex], &mut [Complex]) {
    let start1 = start0 | tmask;
    let (lo, hi) = amps.split_at_mut(start1);
    (&mut lo[start0..start0 + run_len], &mut hi[..run_len])
}

impl State {
    /// Validate controls/target and build the enumeration scaffolding.
    fn control_subspace(&self, controls: &[usize], target: usize) -> Subspace {
        self.check_qubit(target);
        let mut fixed = 1usize << target;
        let mut cmask = 0usize;
        for &c in controls {
            self.check_qubit(c);
            assert!(c != target, "control {c} equals target");
            assert!(
                fixed & (1 << c) == 0,
                "qubit {c} used twice in one kernel call"
            );
            fixed |= 1 << c;
            cmask |= 1 << c;
        }
        Subspace::new(fixed, cmask, self.dim() >> (1 + controls.len()))
    }

    /// Apply `diag(d0, d1)` to `target`, conditioned on all `controls`
    /// being `|1⟩`: `2ⁿ⁻¹⁻ᶜ` pairs of scalar multiplies, no cross
    /// terms, no index filtering (see the
    /// [module docs](crate::kernels) for the equivalence contract).
    ///
    /// # Panics
    ///
    /// Panics if any qubit is out of range or repeats.
    pub fn apply_diagonal(&mut self, controls: &[usize], target: usize, d0: Complex, d1: Complex) {
        let sub = self.control_subspace(controls, target);
        let tmask = 1usize << target;
        let pairs = self.dim() >> (1 + controls.len());
        self.record_gate_op();
        self.record_index_ops(pairs as u64);
        let amps = self.amps_mut();
        let mut base = 0usize;
        if d0 == Complex::ONE {
            // Phase-type gates (`s`, `t`, `phase`, every `cphase` /
            // `ccphase` of the QFT ladders): the |…0⟩ branch is
            // untouched, so only the set branch is multiplied.
            for _ in 0..sub.runs {
                let start1 = base | sub.cmask | tmask;
                for a in &mut amps[start1..start1 + sub.run_len] {
                    *a = d1 * *a;
                }
                base = sub.next(base);
            }
        } else {
            for _ in 0..sub.runs {
                let (run0, run1) = pair_runs(amps, base | sub.cmask, tmask, sub.run_len);
                for (a, b) in run0.iter_mut().zip(run1.iter_mut()) {
                    *a = d0 * *a;
                    *b = d1 * *b;
                }
                base = sub.next(base);
            }
        }
    }

    /// Apply the anti-diagonal gate `[[0, a01], [a10, 0]]` to `target`,
    /// conditioned on all `controls` being `|1⟩`: a pure cross-swap of
    /// each amplitude pair with per-branch phases (`x` is
    /// `a01 = a10 = 1`, `y` is `a01 = −i, a10 = i`).
    ///
    /// # Panics
    ///
    /// Panics if any qubit is out of range or repeats.
    pub fn apply_antidiagonal(
        &mut self,
        controls: &[usize],
        target: usize,
        a01: Complex,
        a10: Complex,
    ) {
        let sub = self.control_subspace(controls, target);
        let tmask = 1usize << target;
        let pairs = self.dim() >> (1 + controls.len());
        self.record_gate_op();
        self.record_index_ops(pairs as u64);
        let amps = self.amps_mut();
        let mut base = 0usize;
        let pure_x = a01 == Complex::ONE && a10 == Complex::ONE;
        for _ in 0..sub.runs {
            let (run0, run1) = pair_runs(amps, base | sub.cmask, tmask, sub.run_len);
            if pure_x {
                // X-type gates (`x`, CNOT, Toffoli): a pure amplitude
                // permutation, no arithmetic at all.
                run0.swap_with_slice(run1);
            } else {
                for (x, y) in run0.iter_mut().zip(run1.iter_mut()) {
                    let a = *x;
                    let b = *y;
                    *x = a01 * b;
                    *y = a10 * a;
                }
            }
            base = sub.next(base);
        }
    }

    /// Apply a dense 2×2 unitary to `target`, conditioned on all
    /// `controls` being `|1⟩`, visiting only the control-satisfying
    /// subspace.
    ///
    /// Performs exactly the arithmetic of
    /// [`State::apply_controlled_1q`] on exactly the pairs that path
    /// touches (bit-for-bit identical results) while enumerating
    /// `2ⁿ⁻¹⁻ᶜ` pairs instead of scanning `2ⁿ⁻¹` candidates.
    ///
    /// # Panics
    ///
    /// Panics if any qubit is out of range or repeats.
    pub fn apply_1q_subspace(&mut self, controls: &[usize], target: usize, m: &Matrix2) {
        let sub = self.control_subspace(controls, target);
        let tmask = 1usize << target;
        let pairs = self.dim() >> (1 + controls.len());
        self.record_gate_op();
        self.record_index_ops(pairs as u64);
        let m = m.0;
        let amps = self.amps_mut();
        let mut base = 0usize;
        for _ in 0..sub.runs {
            let (run0, run1) = pair_runs(amps, base | sub.cmask, tmask, sub.run_len);
            for (x, y) in run0.iter_mut().zip(run1.iter_mut()) {
                let a = *x;
                let b = *y;
                *x = m[0][0] * a + m[0][1] * b;
                *y = m[1][0] * a + m[1][1] * b;
            }
            base = sub.next(base);
        }
    }

    /// Swap qubits `a` and `b`, conditioned on all `controls` being
    /// `|1⟩`, enumerating exactly the `2ⁿ⁻²⁻ᶜ` index pairs it
    /// exchanges (the generic [`State::swap`] /
    /// [`State::apply_controlled_swap`] scan all `2ⁿ` indices).
    ///
    /// Bit-for-bit identical to the generic path: the same disjoint
    /// transpositions are applied (in ascending order of the
    /// `bit_a = 1, bit_b = 0` representative).
    ///
    /// # Panics
    ///
    /// Panics if qubits are out of range, `a == b`, or a control
    /// overlaps a swap target.
    pub fn apply_swap_subspace(&mut self, controls: &[usize], a: usize, b: usize) {
        self.check_qubit(a);
        self.check_qubit(b);
        assert!(a != b, "swap targets must differ");
        let (lo, hi) = (a.min(b), a.max(b));
        let lo_mask = 1usize << lo;
        let hi_mask = 1usize << hi;
        let mut fixed = lo_mask | hi_mask;
        let mut cmask = 0usize;
        for &c in controls {
            self.check_qubit(c);
            assert!(c != a && c != b, "control {c} overlaps swap target");
            assert!(
                fixed & (1 << c) == 0,
                "qubit {c} used twice in one kernel call"
            );
            fixed |= 1 << c;
            cmask |= 1 << c;
        }
        let count = self.dim() >> (2 + controls.len());
        let sub = Subspace::new(fixed, cmask, count);
        self.record_gate_op();
        self.record_index_ops(count as u64);
        let amps = self.amps_mut();
        let mut base = 0usize;
        for _ in 0..sub.runs {
            // Representative run: controls 1, low bit 1, high bit 0 —
            // swapped with the run at low bit 0, high bit 1. Both runs
            // are contiguous (`run_len ≤ lo_mask < hi_mask`) and the
            // partner run starts strictly above the representative.
            let start_i = base | sub.cmask | lo_mask;
            let start_j = (start_i & !lo_mask) | hi_mask;
            let (lo, hi) = amps.split_at_mut(start_j);
            lo[start_i..start_i + sub.run_len].swap_with_slice(&mut hi[..sub.run_len]);
            base = sub.next(base);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gates;
    use crate::state::State;

    /// A fixed non-trivial 4-qubit state with every amplitude nonzero.
    fn dense_state() -> State {
        let mut s = State::zero(4);
        for q in 0..4 {
            s.apply_1q(q, &gates::h());
            s.apply_1q(q, &gates::t());
        }
        s.apply_controlled_1q(&[0], 2, &gates::ry(0.37));
        s.apply_controlled_1q(&[3], 1, &gates::rx(-1.1));
        s.reset_gate_ops();
        s.reset_index_ops();
        s
    }

    fn assert_bits_identical(a: &State, b: &State) {
        for i in 0..a.dim() {
            assert_eq!(
                a.amplitude(i).re.to_bits(),
                b.amplitude(i).re.to_bits(),
                "re mismatch at {i}"
            );
            assert_eq!(
                a.amplitude(i).im.to_bits(),
                b.amplitude(i).im.to_bits(),
                "im mismatch at {i}"
            );
        }
    }

    #[test]
    fn classify_named_gates() {
        for g in [
            gates::z(),
            gates::s(),
            gates::sdg(),
            gates::t(),
            gates::tdg(),
            gates::rz(0.7),
            gates::phase(-0.3),
        ] {
            assert_eq!(classify(&g), MatrixClass::Diagonal);
        }
        assert_eq!(classify(&gates::x()), MatrixClass::AntiDiagonal);
        assert_eq!(classify(&gates::y()), MatrixClass::AntiDiagonal);
        for g in [gates::h(), gates::rx(0.4), gates::ry(1.2)] {
            assert_eq!(classify(&g), MatrixClass::General);
        }
        // rx(π) is anti-diagonal only up to numerically-exact zeros on
        // the diagonal: cos(π/2) is not exactly 0.0 in f64, so it must
        // stay General.
        assert_eq!(
            classify(&gates::rx(std::f64::consts::PI)),
            MatrixClass::General
        );
    }

    #[test]
    fn diagonal_kernel_matches_generic_values() {
        for controls in [vec![], vec![1], vec![1, 3]] {
            let g = gates::rz(0.9);
            let mut fast = dense_state();
            fast.apply_diagonal(&controls, 2, g.0[0][0], g.0[1][1]);
            let mut reference = dense_state();
            reference.apply_controlled_1q(&controls, 2, &g);
            assert_eq!(fast, reference, "controls {controls:?}");
        }
    }

    #[test]
    fn antidiagonal_kernel_matches_generic_values() {
        for controls in [vec![], vec![0], vec![0, 3]] {
            let g = gates::y();
            let mut fast = dense_state();
            fast.apply_antidiagonal(&controls, 1, g.0[0][1], g.0[1][0]);
            let mut reference = dense_state();
            reference.apply_controlled_1q(&controls, 1, &g);
            assert_eq!(fast, reference, "controls {controls:?}");
        }
    }

    #[test]
    fn subspace_dense_kernel_is_bit_identical() {
        for controls in [vec![], vec![0], vec![0, 1], vec![3, 0, 1]] {
            let g = gates::u3(0.3, 1.1, -0.4);
            let mut fast = dense_state();
            fast.apply_1q_subspace(&controls, 2, &g);
            let mut reference = dense_state();
            reference.apply_controlled_1q(&controls, 2, &g);
            assert_bits_identical(&fast, &reference);
        }
    }

    #[test]
    fn subspace_swap_is_bit_identical() {
        for controls in [vec![], vec![2], vec![2, 3]] {
            let mut fast = dense_state();
            fast.apply_swap_subspace(&controls, 0, 1);
            let mut reference = dense_state();
            if controls.is_empty() {
                reference.swap(0, 1);
            } else {
                reference.apply_controlled_swap(&controls, 0, 1);
            }
            assert_bits_identical(&fast, &reference);
        }
        // Reversed qubit order is the same operation.
        let mut ab = dense_state();
        ab.apply_swap_subspace(&[3], 0, 2);
        let mut ba = dense_state();
        ba.apply_swap_subspace(&[3], 2, 0);
        assert_bits_identical(&ab, &ba);
    }

    #[test]
    fn kernels_do_reduced_index_work() {
        // n = 4 (dim = 16). Generic controlled scan: 8 candidates
        // regardless of controls; subspace kernels shrink with each
        // control. Generic swap scans 16; subspace swap visits 4.
        let mut s = dense_state();
        s.apply_1q_subspace(&[], 0, &gates::h());
        assert_eq!(s.index_ops(), 8); // same as apply_1q: all pairs
        s.apply_1q_subspace(&[1], 0, &gates::h());
        assert_eq!(s.index_ops(), 8 + 4);
        s.apply_1q_subspace(&[1, 2], 0, &gates::h()); // Toffoli shape
        assert_eq!(s.index_ops(), 8 + 4 + 2);
        s.apply_diagonal(&[1, 2], 0, Complex::ONE, Complex::I);
        assert_eq!(s.index_ops(), 8 + 4 + 2 + 2);
        s.apply_antidiagonal(&[3], 0, Complex::ONE, Complex::ONE);
        assert_eq!(s.index_ops(), 8 + 4 + 2 + 2 + 4);
        s.apply_swap_subspace(&[], 0, 1);
        assert_eq!(s.index_ops(), 8 + 4 + 2 + 2 + 4 + 4);
        s.apply_swap_subspace(&[2], 0, 1); // Fredkin shape
        assert_eq!(s.index_ops(), 8 + 4 + 2 + 2 + 4 + 4 + 2);
        assert_eq!(s.gate_ops(), 7);

        // The generic paths pay the full scan for the same gates.
        let mut generic = dense_state();
        generic.apply_controlled_1q(&[1, 2], 0, &gates::x());
        assert_eq!(generic.index_ops(), 8);
        generic.apply_controlled_swap(&[2], 0, 1);
        assert_eq!(generic.index_ops(), 8 + 16);
    }

    #[test]
    fn toffoli_truth_table_via_subspace() {
        for input in 0..8u64 {
            let mut s = State::basis(3, input).unwrap();
            s.apply_antidiagonal(&[0, 1], 2, Complex::ONE, Complex::ONE);
            let expected = if input & 0b11 == 0b11 {
                (input ^ 0b100) as usize
            } else {
                input as usize
            };
            assert!(
                (s.probability(expected) - 1.0).abs() < 1e-12,
                "input {input}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "used twice")]
    fn duplicate_control_panics() {
        dense_state().apply_1q_subspace(&[1, 1], 0, &gates::x());
    }

    #[test]
    #[should_panic(expected = "control 0 equals target")]
    fn control_equals_target_panics() {
        dense_state().apply_diagonal(&[0], 0, Complex::ONE, Complex::I);
    }

    #[test]
    #[should_panic(expected = "swap targets must differ")]
    fn swap_same_qubit_panics() {
        dense_state().apply_swap_subspace(&[], 1, 1);
    }

    #[test]
    #[should_panic(expected = "overlaps swap target")]
    fn swap_control_overlap_panics() {
        dense_state().apply_swap_subspace(&[0], 0, 1);
    }
}
