//! A self-contained double-precision complex number.
//!
//! Implemented in-crate (rather than pulling in an external numerics crate)
//! so the simulator substrate is fully self-hosted, mirroring the paper's
//! requirement that every layer of the toolchain be available for
//! inspection while debugging.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number `re + i·im` with `f64` components.
///
/// ```
/// use qdb_sim::Complex;
/// let z = Complex::new(3.0, 4.0);
/// assert_eq!(z.norm_sqr(), 25.0);
/// assert_eq!(z * z.conj(), Complex::new(25.0, 0.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// The additive identity, `0 + 0i`.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// The multiplicative identity, `1 + 0i`.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit, `0 + 1i`.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// Construct from real and imaginary parts.
    #[must_use]
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// A purely real value.
    #[must_use]
    pub const fn real(re: f64) -> Self {
        Self { re, im: 0.0 }
    }

    /// Construct from polar coordinates: `r·e^{iθ}`.
    ///
    /// ```
    /// use qdb_sim::Complex;
    /// let z = Complex::from_polar(2.0, std::f64::consts::FRAC_PI_2);
    /// assert!((z - Complex::new(0.0, 2.0)).abs() < 1e-15);
    /// ```
    #[must_use]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Self::new(r * theta.cos(), r * theta.sin())
    }

    /// `e^{iθ}` — a unit phase.
    #[must_use]
    pub fn cis(theta: f64) -> Self {
        Self::from_polar(1.0, theta)
    }

    /// Complex conjugate.
    #[must_use]
    pub fn conj(self) -> Self {
        Self::new(self.re, -self.im)
    }

    /// Squared magnitude `|z|²` (a Born-rule probability when `z` is an
    /// amplitude of a normalized state).
    #[must_use]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude `|z|`.
    #[must_use]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Argument (phase angle) in `(−π, π]`.
    #[must_use]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplicative inverse `1/z`.
    ///
    /// Returns NaN components if `z == 0`.
    #[must_use]
    pub fn recip(self) -> Self {
        let d = self.norm_sqr();
        Self::new(self.re / d, -self.im / d)
    }

    /// Scale by a real factor.
    #[must_use]
    pub fn scale(self, k: f64) -> Self {
        Self::new(self.re * k, self.im * k)
    }

    /// `true` when both components are within `tol` of `other`'s.
    #[must_use]
    pub fn approx_eq(self, other: Self, tol: f64) -> bool {
        (self.re - other.re).abs() <= tol && (self.im - other.im).abs() <= tol
    }

    /// Complex exponential `e^z`.
    #[must_use]
    pub fn exp(self) -> Self {
        Self::from_polar(self.re.exp(), self.im)
    }

    /// Square root on the principal branch.
    #[must_use]
    pub fn sqrt(self) -> Self {
        Self::from_polar(self.abs().sqrt(), self.arg() / 2.0)
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex {
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for Complex {
    fn sub_assign(&mut self, rhs: Complex) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for Complex {
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    fn mul(self, rhs: f64) -> Complex {
        self.scale(rhs)
    }
}

impl Mul<Complex> for f64 {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        rhs.scale(self)
    }
}

impl Div for Complex {
    type Output = Complex;
    // z / w computed as z * w⁻¹: multiplication is the correct operator.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn div(self, rhs: Complex) -> Complex {
        self * rhs.recip()
    }
}

impl Div<f64> for Complex {
    type Output = Complex;
    fn div(self, rhs: f64) -> Complex {
        Complex::new(self.re / rhs, self.im / rhs)
    }
}

impl Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl Sum for Complex {
    fn sum<I: Iterator<Item = Complex>>(iter: I) -> Complex {
        iter.fold(Complex::ZERO, |a, b| a + b)
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Self {
        Complex::real(re)
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    #[test]
    fn arithmetic_identities() {
        let z = Complex::new(2.0, -3.0);
        assert_eq!(z + Complex::ZERO, z);
        assert_eq!(z * Complex::ONE, z);
        assert_eq!(z - z, Complex::ZERO);
        assert_eq!(-z + z, Complex::ZERO);
        assert_eq!(Complex::I * Complex::I, Complex::new(-1.0, 0.0));
    }

    #[test]
    fn multiplication_matches_expansion() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -4.0);
        // (1+2i)(3−4i) = 3 −4i +6i −8i² = 11 + 2i
        assert_eq!(a * b, Complex::new(11.0, 2.0));
    }

    #[test]
    fn division_inverts_multiplication() {
        let a = Complex::new(1.5, -0.5);
        let b = Complex::new(-2.0, 3.0);
        let q = (a * b) / b;
        assert!(q.approx_eq(a, 1e-14));
    }

    #[test]
    fn polar_round_trip() {
        let z = Complex::from_polar(2.0, PI / 3.0);
        assert!((z.abs() - 2.0).abs() < 1e-14);
        assert!((z.arg() - PI / 3.0).abs() < 1e-14);
    }

    #[test]
    fn cis_is_unit() {
        for k in 0..8 {
            let z = Complex::cis(k as f64 * FRAC_PI_2 / 3.0);
            assert!((z.abs() - 1.0).abs() < 1e-14);
        }
    }

    #[test]
    fn conj_and_norm() {
        let z = Complex::new(3.0, 4.0);
        assert_eq!(z.conj(), Complex::new(3.0, -4.0));
        assert_eq!(z.norm_sqr(), 25.0);
        assert_eq!(z.abs(), 5.0);
        assert!((z * z.conj()).approx_eq(Complex::real(25.0), 1e-12));
    }

    #[test]
    fn exp_of_imaginary_is_cis() {
        let theta = 0.7;
        assert!(Complex::new(0.0, theta)
            .exp()
            .approx_eq(Complex::cis(theta), 1e-14));
    }

    #[test]
    fn sqrt_squares_back() {
        for &(re, im) in &[(4.0, 0.0), (-1.0, 0.0), (1.0, 1.0), (-2.0, -3.0)] {
            let z = Complex::new(re, im);
            let r = z.sqrt();
            assert!((r * r).approx_eq(z, 1e-12), "sqrt failed for {z}");
        }
    }

    #[test]
    fn sum_folds() {
        let zs = [Complex::ONE, Complex::I, Complex::new(1.0, 1.0)];
        let s: Complex = zs.into_iter().sum();
        assert_eq!(s, Complex::new(2.0, 2.0));
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Complex::new(1.0, 2.0).to_string(), "1+2i");
        assert_eq!(Complex::new(1.0, -2.0).to_string(), "1-2i");
    }

    #[test]
    fn scalar_ops() {
        let z = Complex::new(1.0, -1.0);
        assert_eq!(z * 2.0, Complex::new(2.0, -2.0));
        assert_eq!(2.0 * z, z * 2.0);
        assert_eq!(z / 2.0, Complex::new(0.5, -0.5));
    }
}
