//! Cross-trajectory packed replay: K sibling states in one SoA buffer.
//!
//! The trajectory-tree engine in `qdb-core` replays every unique noisy
//! trajectory from an ideal checkpoint. Sibling trajectories that fork
//! within a short suffix window replay *almost the same op sequence* —
//! only their fault Paulis differ — yet per-fork replay walks the
//! compiled plan (and the whole amplitude buffer) once per sibling.
//! A [`StatePack`] batches K such siblings into one structure-of-arrays
//! buffer with the **K lane amplitudes contiguous per basis index**
//! (`amps[index * width + lane]`), so one pass over the compiled plan
//! applies each op to all K states at once:
//!
//! * plan decode (op match, subspace setup) is amortized K-fold;
//! * every run of basis indices is a contiguous block of `run_len × K`
//!   complex numbers — one cache-friendly sweep instead of K strided
//!   ones;
//! * the inner loops are the same bounds-check-free slice zips the
//!   dense kernels use, now `K` times longer, which LLVM
//!   auto-vectorizes across the lane dimension.
//!
//! ## Equivalence contract
//!
//! The pack kernels perform, per lane, the *identical* scalar
//! arithmetic of the corresponding [`State`] kernels, on the same
//! amplitude pairs, in the same ascending order: the `(pair, lane)`
//! element at SoA offset `j·K + k` pairs with `j·K + k` of the partner
//! block exactly as element `j` pairs with `j` in the unpacked run, so
//! zipping the scaled blocks preserves the per-lane pairing and order.
//! Per-lane faults are applied with [`StatePack::apply_pauli_lane`],
//! which mirrors [`State::apply_1q`]'s dense loop bit for bit.
//! Extracting a lane therefore yields amplitudes bit-identical to
//! replaying that trajectory alone on a [`State`] (up to the documented
//! sign-of-zero caveat of the specialized kernels, which both paths
//! share).

use crate::backend::{KernelOp, SimOp};
use crate::complex::Complex;
use crate::gates::Matrix2;
use crate::kernels::Subspace;
use crate::state::{Pauli, State};

/// K same-shape statevectors stored SoA: lane `k` of basis index `i`
/// lives at `amps[i * width + k]`.
///
/// Built by broadcasting a checkpoint [`State`] across all lanes
/// ([`StatePack::broadcast`] or, recycling a buffer,
/// [`StatePack::broadcast_into`]); driven by [`StatePack::apply_op`]
/// (all lanes) and [`StatePack::apply_pauli_lane`] (one lane);
/// harvested by [`StatePack::extract_lane_into`].
#[derive(Debug, Clone)]
pub struct StatePack {
    num_qubits: usize,
    width: usize,
    amps: Vec<Complex>,
    gate_ops: u64,
}

impl StatePack {
    /// A pack of `width` lanes, every lane an exact copy of `source`.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0`.
    #[must_use]
    pub fn broadcast(source: &State, width: usize) -> Self {
        let mut pack = Self {
            num_qubits: 0,
            width: 0,
            amps: Vec::new(),
            gate_ops: 0,
        };
        pack.broadcast_into(source, width);
        pack
    }

    /// Re-initialize this pack as `width` copies of `source`, reusing
    /// the existing buffer when its capacity suffices (the pack-lease
    /// analogue of [`State::copy_from`]).
    ///
    /// # Panics
    ///
    /// Panics if `width == 0`.
    pub fn broadcast_into(&mut self, source: &State, width: usize) {
        assert!(width > 0, "a state pack needs at least one lane");
        self.num_qubits = source.num_qubits();
        self.width = width;
        self.gate_ops = 0;
        let dim = source.dim();
        self.amps.clear();
        self.amps.reserve_exact(dim * width);
        for i in 0..dim {
            let a = source.amplitude(i);
            for _ in 0..width {
                self.amps.push(a);
            }
        }
    }

    /// Number of qubits per lane.
    #[must_use]
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Number of lanes.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Amplitude-index dimension per lane, `2ⁿ`.
    #[must_use]
    pub fn dim(&self) -> usize {
        1usize << self.num_qubits
    }

    /// Packed gate applications performed since the last broadcast
    /// (each [`apply_op`](StatePack::apply_op) counts once, not once
    /// per lane — the decode amortization the pack exists for).
    #[must_use]
    pub fn gate_ops(&self) -> u64 {
        self.gate_ops
    }

    /// Bytes of memory this pack holds resident (buffer capacity plus
    /// header) — what the execution governor's resident-byte budget
    /// polls during packed replay.
    #[must_use]
    pub fn resident_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.amps.capacity() * std::mem::size_of::<Complex>()
    }

    /// Amplitude of basis index `i`, lane `k`.
    ///
    /// # Panics
    ///
    /// Panics if `i ≥ dim()` or `k ≥ width()`.
    #[must_use]
    pub fn amplitude(&self, i: usize, k: usize) -> Complex {
        assert!(k < self.width, "lane {k} out of range");
        self.amps[i * self.width + k]
    }

    /// Copy lane `k`'s amplitudes into `dst`, which must have the same
    /// qubit count (the trajectory engine hands in a pooled state that
    /// was checked out at matching shape). `dst`'s instrumentation
    /// counters are left as they were.
    ///
    /// # Panics
    ///
    /// Panics if `k ≥ width()` or `dst.num_qubits() != num_qubits()`.
    pub fn extract_lane_into(&self, k: usize, dst: &mut State) {
        assert!(k < self.width, "lane {k} out of range");
        assert_eq!(
            dst.num_qubits(),
            self.num_qubits,
            "lane extraction into a mismatched state"
        );
        let width = self.width;
        for (i, out) in dst.amps_mut().iter_mut().enumerate() {
            *out = self.amps[i * width + k];
        }
    }

    fn check_qubit(&self, q: usize) -> usize {
        assert!(
            q < self.num_qubits,
            "qubit {q} out of range for {}-qubit pack",
            self.num_qubits
        );
        q
    }

    /// Validate controls/target and build the per-index enumeration
    /// (identical to the dense kernels' — the SoA scaling by `width`
    /// happens at slice extraction).
    fn control_subspace(&self, controls: &[usize], target: usize) -> Subspace {
        self.check_qubit(target);
        let mut fixed = 1usize << target;
        let mut cmask = 0usize;
        for &c in controls {
            self.check_qubit(c);
            assert!(c != target, "control {c} equals target");
            assert!(
                fixed & (1 << c) == 0,
                "qubit {c} used twice in one kernel call"
            );
            fixed |= 1 << c;
            cmask |= 1 << c;
        }
        Subspace::new(fixed, cmask, self.dim() >> (1 + controls.len()))
    }

    /// The SoA blocks of one run pair: amplitude-index runs
    /// `[start0, start0 + run_len)` and the `tmask`-offset partner,
    /// scaled by `width` into contiguous `run_len × width` slices.
    #[inline]
    fn pair_blocks(
        &mut self,
        start0: usize,
        tmask: usize,
        run_len: usize,
    ) -> (&mut [Complex], &mut [Complex]) {
        let width = self.width;
        let start1 = start0 | tmask;
        let (lo, hi) = self.amps.split_at_mut(start1 * width);
        (
            &mut lo[start0 * width..(start0 + run_len) * width],
            &mut hi[..run_len * width],
        )
    }

    /// Apply one lowered op to every lane — the packed analogue of
    /// [`SimBackend::apply_op`](crate::backend::SimBackend::apply_op)
    /// on [`State`], with per-lane arithmetic identical to the dense
    /// kernels'.
    ///
    /// # Panics
    ///
    /// Panics if the op touches a qubit out of range or repeats one.
    pub fn apply_op(&mut self, op: &SimOp) {
        match op.kernel() {
            KernelOp::Diagonal { d0, d1 } => {
                self.apply_diagonal(op.controls(), op.target(), *d0, *d1);
            }
            KernelOp::AntiDiagonal { a01, a10 } => {
                self.apply_antidiagonal(op.controls(), op.target(), *a01, *a10);
            }
            KernelOp::General(m) => self.apply_general(op.controls(), op.target(), m),
            KernelOp::Swap { other } => self.apply_swap(op.controls(), op.target(), *other),
        }
    }

    fn apply_diagonal(&mut self, controls: &[usize], target: usize, d0: Complex, d1: Complex) {
        let sub = self.control_subspace(controls, target);
        let tmask = 1usize << target;
        self.gate_ops += 1;
        let width = self.width;
        let mut base = 0usize;
        if d0 == Complex::ONE {
            for _ in 0..sub.runs {
                let start1 = (base | sub.cmask | tmask) * width;
                for a in &mut self.amps[start1..start1 + sub.run_len * width] {
                    *a = d1 * *a;
                }
                base = sub.next(base);
            }
        } else {
            for _ in 0..sub.runs {
                let (run0, run1) = self.pair_blocks(base | sub.cmask, tmask, sub.run_len);
                for (a, b) in run0.iter_mut().zip(run1.iter_mut()) {
                    *a = d0 * *a;
                    *b = d1 * *b;
                }
                base = sub.next(base);
            }
        }
    }

    fn apply_antidiagonal(
        &mut self,
        controls: &[usize],
        target: usize,
        a01: Complex,
        a10: Complex,
    ) {
        let sub = self.control_subspace(controls, target);
        let tmask = 1usize << target;
        self.gate_ops += 1;
        let pure_x = a01 == Complex::ONE && a10 == Complex::ONE;
        let mut base = 0usize;
        for _ in 0..sub.runs {
            let (run0, run1) = self.pair_blocks(base | sub.cmask, tmask, sub.run_len);
            if pure_x {
                run0.swap_with_slice(run1);
            } else {
                for (x, y) in run0.iter_mut().zip(run1.iter_mut()) {
                    let a = *x;
                    let b = *y;
                    *x = a01 * b;
                    *y = a10 * a;
                }
            }
            base = sub.next(base);
        }
    }

    fn apply_general(&mut self, controls: &[usize], target: usize, m: &Matrix2) {
        let sub = self.control_subspace(controls, target);
        let tmask = 1usize << target;
        self.gate_ops += 1;
        let m = m.0;
        let mut base = 0usize;
        for _ in 0..sub.runs {
            let (run0, run1) = self.pair_blocks(base | sub.cmask, tmask, sub.run_len);
            for (x, y) in run0.iter_mut().zip(run1.iter_mut()) {
                let a = *x;
                let b = *y;
                *x = m[0][0] * a + m[0][1] * b;
                *y = m[1][0] * a + m[1][1] * b;
            }
            base = sub.next(base);
        }
    }

    fn apply_swap(&mut self, controls: &[usize], a: usize, b: usize) {
        self.check_qubit(a);
        self.check_qubit(b);
        assert!(a != b, "swap targets must differ");
        let (lo, hi) = (a.min(b), a.max(b));
        let lo_mask = 1usize << lo;
        let hi_mask = 1usize << hi;
        let mut fixed = lo_mask | hi_mask;
        let mut cmask = 0usize;
        for &c in controls {
            self.check_qubit(c);
            assert!(c != a && c != b, "control {c} overlaps swap target");
            assert!(
                fixed & (1 << c) == 0,
                "qubit {c} used twice in one kernel call"
            );
            fixed |= 1 << c;
            cmask |= 1 << c;
        }
        let count = self.dim() >> (2 + controls.len());
        let sub = Subspace::new(fixed, cmask, count);
        self.gate_ops += 1;
        let width = self.width;
        let mut base = 0usize;
        for _ in 0..sub.runs {
            let start_i = base | sub.cmask | lo_mask;
            let start_j = (start_i & !lo_mask) | hi_mask;
            let (lo, hi) = self.amps.split_at_mut(start_j * width);
            lo[start_i * width..(start_i + sub.run_len) * width]
                .swap_with_slice(&mut hi[..sub.run_len * width]);
            base = sub.next(base);
        }
    }

    /// Apply a single-qubit Pauli to **one lane** — the per-trajectory
    /// fault primitive of packed replay.
    ///
    /// Mirrors the dense path exactly: [`State`]'s
    /// `apply_pauli` lowers `p` to its full 2×2 matrix and walks
    /// [`State::apply_1q`]'s pair loop, so this does the same per-index
    /// walk with the same dense arithmetic, touching only lane `k`'s
    /// strided elements. Identity is a no-op, as on [`State`].
    ///
    /// # Panics
    ///
    /// Panics if `k ≥ width()` or `q` is out of range.
    pub fn apply_pauli_lane(&mut self, k: usize, q: usize, p: Pauli) {
        assert!(k < self.width, "lane {k} out of range");
        self.check_qubit(q);
        if p == Pauli::I {
            return;
        }
        let m = p.matrix().0;
        let width = self.width;
        let mask = 1usize << q;
        let dim = self.dim();
        let mut base = 0usize;
        while base < dim {
            for i0 in base..base + mask {
                let i1 = i0 | mask;
                let a = self.amps[i0 * width + k];
                let b = self.amps[i1 * width + k];
                self.amps[i0 * width + k] = m[0][0] * a + m[0][1] * b;
                self.amps[i1 * width + k] = m[1][0] * a + m[1][1] * b;
            }
            base += mask << 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::SimBackend;
    use crate::gates;

    /// A fixed non-trivial 5-qubit checkpoint.
    fn checkpoint() -> State {
        let mut s = State::zero(5);
        for q in 0..5 {
            s.apply_1q(q, &gates::h());
        }
        s.apply_1q(2, &gates::t());
        s.apply_controlled_1q(&[0], 3, &gates::ry(0.41));
        s
    }

    fn ops() -> Vec<SimOp> {
        let t = gates::t().0;
        let y = gates::y().0;
        vec![
            SimOp::new(vec![], 1, KernelOp::General(gates::h())),
            SimOp::new(
                vec![0],
                2,
                KernelOp::Diagonal {
                    d0: t[0][0],
                    d1: t[1][1],
                },
            ),
            SimOp::new(
                vec![],
                4,
                KernelOp::AntiDiagonal {
                    a01: y[0][1],
                    a10: y[1][0],
                },
            ),
            SimOp::new(
                vec![3],
                0,
                KernelOp::AntiDiagonal {
                    a01: Complex::ONE,
                    a10: Complex::ONE,
                },
            ),
            SimOp::new(vec![1], 2, KernelOp::Swap { other: 4 }),
            SimOp::new(vec![], 3, KernelOp::General(gates::u3(0.3, -0.9, 1.7))),
        ]
    }

    fn assert_lane_bits(pack: &StatePack, k: usize, reference: &State) {
        for i in 0..reference.dim() {
            assert_eq!(
                pack.amplitude(i, k).re.to_bits(),
                reference.amplitude(i).re.to_bits(),
                "re mismatch lane {k} index {i}"
            );
            assert_eq!(
                pack.amplitude(i, k).im.to_bits(),
                reference.amplitude(i).im.to_bits(),
                "im mismatch lane {k} index {i}"
            );
        }
    }

    #[test]
    fn packed_ops_are_bit_identical_to_per_state_replay() {
        let source = checkpoint();
        let mut pack = StatePack::broadcast(&source, 3);
        let mut reference = source.clone();
        for op in ops() {
            pack.apply_op(&op);
            reference.apply_op(&op);
        }
        for k in 0..3 {
            assert_lane_bits(&pack, k, &reference);
        }
        assert_eq!(pack.gate_ops(), ops().len() as u64);
    }

    #[test]
    fn lane_faults_stay_confined_and_bit_identical() {
        let source = checkpoint();
        let mut pack = StatePack::broadcast(&source, 4);
        // Each lane gets a different fault sequence interleaved with
        // shared packed ops — the packed-replay access pattern.
        let shared = ops();
        let faults: [&[(usize, Pauli)]; 4] = [
            &[(0, Pauli::X)],
            &[(2, Pauli::Z), (4, Pauli::Y)],
            &[],
            &[(1, Pauli::Y)],
        ];
        let mut refs: Vec<State> = (0..4).map(|_| source.clone()).collect();
        for (oi, op) in shared.iter().enumerate() {
            pack.apply_op(op);
            for r in refs.iter_mut() {
                r.apply_op(op);
            }
            if oi == 1 {
                for (k, lane_faults) in faults.iter().enumerate() {
                    for &(q, p) in *lane_faults {
                        pack.apply_pauli_lane(k, q, p);
                        refs[k].apply_pauli(q, p);
                    }
                }
            }
        }
        for (k, r) in refs.iter().enumerate() {
            assert_lane_bits(&pack, k, r);
        }
    }

    #[test]
    fn extraction_round_trips_through_a_pooled_state() {
        let source = checkpoint();
        let mut pack = StatePack::broadcast(&source, 2);
        pack.apply_pauli_lane(1, 0, Pauli::X);
        let mut dst = State::zero(5);
        pack.extract_lane_into(0, &mut dst);
        assert_eq!(dst, source);
        pack.extract_lane_into(1, &mut dst);
        let mut flipped = source.clone();
        flipped.apply_pauli(0, Pauli::X);
        assert_eq!(dst, flipped);
    }

    #[test]
    fn broadcast_into_recycles_capacity() {
        let source = checkpoint();
        let mut pack = StatePack::broadcast(&source, 4);
        let cap = pack.resident_bytes();
        pack.broadcast_into(&source, 2);
        assert_eq!(pack.width(), 2);
        assert!(pack.resident_bytes() <= cap);
        assert_lane_bits(&pack, 0, &source);
        assert_lane_bits(&pack, 1, &source);
    }

    #[test]
    #[should_panic(expected = "at least one lane")]
    fn zero_width_pack_panics() {
        let _ = StatePack::broadcast(&checkpoint(), 0);
    }
}
