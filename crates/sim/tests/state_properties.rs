//! Property-based tests of the simulator's physical invariants.

use proptest::prelude::*;
use qdb_sim::density::{purity, reduced_density_matrix, von_neumann_entropy};
use qdb_sim::linalg::{hermitian_eigen, is_unitary};
use qdb_sim::{gates, Complex, Matrix2, State};

const N: usize = 4;

fn arb_gate() -> impl Strategy<Value = Matrix2> {
    prop_oneof![
        Just(gates::h()),
        Just(gates::x()),
        Just(gates::y()),
        Just(gates::z()),
        Just(gates::s()),
        Just(gates::t()),
        (-3.2f64..3.2).prop_map(gates::rx),
        (-3.2f64..3.2).prop_map(gates::ry),
        (-3.2f64..3.2).prop_map(gates::rz),
        (-3.2f64..3.2).prop_map(gates::phase),
        (0.0f64..3.2, -3.2f64..3.2, -3.2f64..3.2).prop_map(|(t, p, l)| gates::u3(t, p, l)),
    ]
}

/// A random sequence of (target, gate, optional control) moves.
fn arb_moves() -> impl Strategy<Value = Vec<(usize, Matrix2, Option<usize>)>> {
    prop::collection::vec((0..N, arb_gate(), prop::option::of(0..N)), 1..20)
}

fn apply_moves(state: &mut State, moves: &[(usize, Matrix2, Option<usize>)]) {
    for (target, gate, control) in moves {
        match control {
            Some(c) if c != target => state.apply_controlled_1q(&[*c], *target, gate),
            _ => state.apply_1q(*target, gate),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_gate_sequences_preserve_norm(
        input in 0..16u64,
        moves in arb_moves(),
    ) {
        let mut s = State::basis(N, input).unwrap();
        apply_moves(&mut s, &moves);
        prop_assert!((s.norm_sqr() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn all_generated_gates_are_unitary(g in arb_gate()) {
        prop_assert!(g.is_unitary(1e-10));
        // And their dagger inverts them.
        prop_assert!(g.mul(&g.dagger()).approx_eq(&Matrix2::identity(), 1e-10));
    }

    #[test]
    fn reduced_density_matrices_are_valid(
        input in 0..16u64,
        moves in arb_moves(),
        keep_mask in 1..15usize,
    ) {
        let mut s = State::basis(N, input).unwrap();
        apply_moves(&mut s, &moves);
        let keep: Vec<usize> = (0..N).filter(|q| keep_mask & (1 << q) != 0).collect();
        let rho = reduced_density_matrix(&s, &keep).unwrap();
        // Trace one.
        let trace: f64 = (0..rho.len()).map(|i| rho[i][i].re).sum();
        prop_assert!((trace - 1.0).abs() < 1e-9);
        // Hermitian, PSD spectrum, purity in (0, 1].
        let eig = hermitian_eigen(&rho).unwrap();
        for &l in &eig.values {
            prop_assert!(l > -1e-9, "negative eigenvalue {l}");
            prop_assert!(l < 1.0 + 1e-9);
        }
        let p = purity(&rho);
        prop_assert!(p > 1.0 / rho.len() as f64 - 1e-9 && p <= 1.0 + 1e-9);
        // Entropy consistent with purity: zero entropy ⇔ purity one.
        let entropy = von_neumann_entropy(&rho).unwrap();
        prop_assert!(entropy >= -1e-9);
        if (p - 1.0).abs() < 1e-12 {
            prop_assert!(entropy < 1e-6);
        }
    }

    #[test]
    fn inner_product_is_conjugate_symmetric(
        a_moves in arb_moves(),
        b_moves in arb_moves(),
    ) {
        let mut a = State::zero(N);
        apply_moves(&mut a, &a_moves);
        let mut b = State::zero(N);
        apply_moves(&mut b, &b_moves);
        let ab = a.inner(&b);
        let ba = b.inner(&a);
        prop_assert!(ab.approx_eq(ba.conj(), 1e-10));
        // Cauchy–Schwarz.
        prop_assert!(ab.abs() <= 1.0 + 1e-9);
    }

    #[test]
    fn measurement_collapse_is_consistent(
        input in 0..16u64,
        moves in arb_moves(),
        q in 0..N,
        seed in 0..u64::MAX,
    ) {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut s = State::basis(N, input).unwrap();
        apply_moves(&mut s, &moves);
        let p1 = s.prob_one(q);
        let mut rng = StdRng::seed_from_u64(seed);
        let bit = s.measure_qubit(q, &mut rng);
        // After collapse the measured qubit is deterministic…
        prop_assert!((s.prob_one(q) - f64::from(bit)).abs() < 1e-9);
        // …the state is normalized…
        prop_assert!((s.norm_sqr() - 1.0).abs() < 1e-9);
        // …and an impossible outcome never occurs.
        if bit == 1 {
            prop_assert!(p1 > 0.0);
        } else {
            prop_assert!(p1 < 1.0);
        }
    }

    #[test]
    fn sampler_only_emits_supported_outcomes(
        input in 0..16u64,
        moves in arb_moves(),
        seed in 0..u64::MAX,
    ) {
        use qdb_sim::Sampler;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut s = State::basis(N, input).unwrap();
        apply_moves(&mut s, &moves);
        let sampler = Sampler::new(&s);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..32 {
            let outcome = sampler.sample(&mut rng) as usize;
            prop_assert!(outcome < s.dim());
            prop_assert!(
                s.probability(outcome) > 1e-12,
                "sampled impossible outcome {outcome}"
            );
        }
    }

    #[test]
    fn random_unitaries_recognized_by_linalg(g in arb_gate()) {
        let m = vec![
            vec![g.0[0][0], g.0[0][1]],
            vec![g.0[1][0], g.0[1][1]],
        ];
        prop_assert!(is_unitary(&m, 1e-9));
        // Hermitian eigendecomposition of g + g† has real spectrum
        // bounded by 2.
        let h = vec![
            vec![g.0[0][0] + g.0[0][0].conj(), g.0[0][1] + g.0[1][0].conj()],
            vec![g.0[1][0] + g.0[0][1].conj(), g.0[1][1] + g.0[1][1].conj()],
        ];
        let eig = hermitian_eigen(&h).unwrap();
        for &l in &eig.values {
            prop_assert!(l.abs() <= 2.0 + 1e-9);
        }
    }

    #[test]
    fn tensor_product_factorizes_probabilities(a in 0..4u64, b in 0..4u64) {
        let sa = State::basis(2, a).unwrap();
        let sb = State::basis(2, b).unwrap();
        let t = sa.tensor(&sb);
        let idx = ((b << 2) | a) as usize;
        prop_assert!((t.probability(idx) - 1.0).abs() < 1e-12);
        let _ = Complex::ONE; // silence unused import on some cfgs
    }
}
