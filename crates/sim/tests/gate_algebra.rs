//! Property tests of the gate algebra: involutions, group identities,
//! norm preservation under every public gate and noise channel, and the
//! rz-vs-phase distinction that only shows up under controlled
//! application.

use proptest::prelude::*;
use qdb_sim::{gates, Matrix2, NoiseChannel, NoiseModel, Sampler, State};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The whole public single-qubit gate surface, fixed gates first.
fn all_gates(angle: f64) -> Vec<(&'static str, Matrix2)> {
    vec![
        ("h", gates::h()),
        ("x", gates::x()),
        ("y", gates::y()),
        ("z", gates::z()),
        ("s", gates::s()),
        ("sdg", gates::sdg()),
        ("t", gates::t()),
        ("tdg", gates::tdg()),
        ("rx", gates::rx(angle)),
        ("ry", gates::ry(angle)),
        ("rz", gates::rz(angle)),
        ("phase", gates::phase(angle)),
        ("u3", gates::u3(angle, angle * 0.7, angle * 0.3)),
    ]
}

#[test]
fn sim_types_are_send_and_sync() {
    // The ensemble engine shares these across rayon workers; keep the
    // auto traits load-bearing and explicit.
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<State>();
    assert_send_sync::<NoiseModel>();
    assert_send_sync::<NoiseChannel>();
    assert_send_sync::<Sampler>();
    assert_send_sync::<Matrix2>();
}

#[test]
fn fixed_gate_involutions_and_roots() {
    let id = Matrix2::identity();
    // H, X, Y, Z are involutions.
    for (name, g) in [
        ("h", gates::h()),
        ("x", gates::x()),
        ("y", gates::y()),
        ("z", gates::z()),
    ] {
        assert!(g.mul(&g).approx_eq(&id, 1e-12), "{name}² ≠ I");
    }
    // S² = Z, T² = S, and the daggers invert them.
    assert!(gates::s().mul(&gates::s()).approx_eq(&gates::z(), 1e-12));
    assert!(gates::t().mul(&gates::t()).approx_eq(&gates::s(), 1e-12));
    assert!(gates::s().mul(&gates::sdg()).approx_eq(&id, 1e-12));
    assert!(gates::t().mul(&gates::tdg()).approx_eq(&id, 1e-12));
}

#[test]
fn cx_is_an_involution_on_states() {
    for input in 0..4u64 {
        let mut s = State::basis(2, input).unwrap();
        // Entangle first so CX·CX = I is tested off the basis too.
        s.apply_1q(0, &gates::h());
        let reference = s.clone();
        s.apply_controlled_1q(&[0], 1, &gates::x());
        s.apply_controlled_1q(&[0], 1, &gates::x());
        assert!(s.approx_eq(&reference, 1e-12), "CX² ≠ I on |{input}⟩");
    }
}

#[test]
fn rz_and_phase_agree_only_up_to_global_phase() {
    let theta = 1.234_567;
    // Uncontrolled: rz(θ) = e^{−iθ/2}·phase(θ), so the *states* agree
    // up to global phase…
    let mut via_rz = State::zero(1);
    via_rz.apply_1q(0, &gates::h());
    let mut via_phase = via_rz.clone();
    via_rz.apply_1q(0, &gates::rz(theta));
    via_phase.apply_1q(0, &gates::phase(theta));
    assert!(via_rz.approx_eq_up_to_phase(&via_phase, 1e-12));
    assert!(!via_rz.approx_eq(&via_phase, 1e-12), "global phase is real");

    // …but under controlled application the former global phase becomes
    // a *relative* phase on the control, and the states genuinely
    // differ (the Table 1 rotation-decomposition bug class).
    let mut c_rz = State::zero(2);
    c_rz.apply_1q(0, &gates::h());
    c_rz.apply_1q(1, &gates::h());
    let mut c_phase = c_rz.clone();
    c_rz.apply_controlled_1q(&[0], 1, &gates::rz(theta));
    c_phase.apply_controlled_1q(&[0], 1, &gates::phase(theta));
    assert!(
        !c_rz.approx_eq_up_to_phase(&c_phase, 1e-9),
        "controlled-rz must differ from controlled-phase even up to global phase"
    );
    let overlap = c_rz.inner(&c_phase).abs();
    assert!(overlap < 1.0 - 1e-6, "overlap {overlap} too close to 1");
}

#[test]
fn controlled_rz_equals_controlled_phase_after_compensation() {
    // cphase(θ) = crz(θ) followed by phase(θ/2) on the control — the
    // correct decomposition from the paper's Table 1.
    let theta = 0.918_273;
    let mut lhs = State::zero(2);
    lhs.apply_1q(0, &gates::h());
    lhs.apply_1q(1, &gates::h());
    let mut rhs = lhs.clone();
    lhs.apply_controlled_1q(&[0], 1, &gates::phase(theta));
    rhs.apply_controlled_1q(&[0], 1, &gates::rz(theta));
    rhs.apply_1q(0, &gates::phase(theta / 2.0));
    assert!(lhs.approx_eq(&rhs, 1e-12));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_public_gate_is_unitary_and_norm_preserving(
        angle in -6.4f64..6.4,
        input in 0..8u64,
        target in 0..3usize,
    ) {
        for (name, gate) in all_gates(angle) {
            prop_assert!(gate.is_unitary(1e-10), "{} not unitary", name);
            let mut s = State::basis(3, input).unwrap();
            s.apply_1q(target, &gates::h());
            s.apply_1q(target, &gate);
            prop_assert!(
                (s.norm_sqr() - 1.0).abs() < 1e-10,
                "{} broke normalization: {}", name, s.norm_sqr()
            );
        }
    }

    #[test]
    fn every_gate_dagger_inverts_statewise(
        angle in -6.4f64..6.4,
        input in 0..8u64,
        target in 0..3usize,
    ) {
        for (name, gate) in all_gates(angle) {
            let mut s = State::basis(3, input).unwrap();
            s.apply_1q(target, &gates::h());
            let reference = s.clone();
            s.apply_1q(target, &gate);
            s.apply_1q(target, &gate.dagger());
            prop_assert!(s.approx_eq(&reference, 1e-9), "{}†·{} ≠ I", name, name);
        }
    }

    #[test]
    fn hadamard_squared_is_identity_everywhere(
        input in 0..16u64,
        q in 0..4usize,
        angle in -3.2f64..3.2,
    ) {
        // Start from an arbitrary (rotated) state, not just the basis.
        let mut s = State::basis(4, input).unwrap();
        s.apply_1q((q + 1) % 4, &gates::ry(angle));
        let reference = s.clone();
        s.apply_1q(q, &gates::h());
        s.apply_1q(q, &gates::h());
        prop_assert!(s.approx_eq(&reference, 1e-10));
    }

    #[test]
    fn noise_channels_preserve_norm(
        p in 0.0f64..1.0,
        seed in 0..u64::MAX,
        input in 0..8u64,
        q in 0..3usize,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        for channel in [
            NoiseChannel::BitFlip(p),
            NoiseChannel::PhaseFlip(p),
            NoiseChannel::Depolarizing(p),
        ] {
            let mut s = State::basis(3, input).unwrap();
            s.apply_1q(q, &gates::h());
            for _ in 0..16 {
                channel.apply(&mut s, q, &mut rng);
            }
            prop_assert!(
                (s.norm_sqr() - 1.0).abs() < 1e-10,
                "{:?} broke normalization", channel
            );
        }
    }

    #[test]
    fn readout_corruption_stays_in_register_range(
        outcome in 0..256u64,
        flip in 0.0f64..1.0,
        seed in 0..u64::MAX,
    ) {
        let model = NoiseModel::noiseless().with_readout_flip(flip);
        let mut rng = StdRng::seed_from_u64(seed);
        let corrupted = model.corrupt_readout(outcome, 8, &mut rng);
        prop_assert!(corrupted < 256, "corruption escaped the register");
    }
}
