//! Property tests for the Kraus-channel layer: CPTP validation accepts
//! exactly the completeness-satisfying sets, branch norms are a
//! probability distribution on every state, and zero-rate damping is a
//! bit-identical no-op.

use proptest::prelude::*;
use qdb_sim::{gates, Complex, KrausSet, Matrix2, NoiseChannel, SimError, State, CPTP_TOL};

/// Build a 2×2 matrix from 8 raw floats.
fn matrix_from(raw: &[f64]) -> Matrix2 {
    Matrix2([
        [Complex::new(raw[0], raw[1]), Complex::new(raw[2], raw[3])],
        [Complex::new(raw[4], raw[5]), Complex::new(raw[6], raw[7])],
    ])
}

/// `Σ Aᵢ†Aᵢ` — the Gram matrix a Kraus set must whiten to the identity.
fn gram(ops: &[Matrix2]) -> Matrix2 {
    let mut s = Matrix2([[Complex::ZERO; 2]; 2]);
    for a in ops {
        let aa = a.dagger().mul(a);
        for r in 0..2 {
            for c in 0..2 {
                s.0[r][c] += aa.0[r][c];
            }
        }
    }
    s
}

/// Whiten arbitrary operators into a CPTP set: `Kᵢ = Aᵢ·S^{−1/2}` with
/// `S = Σ Aᵢ†Aᵢ`, using the closed 2×2 forms
/// `√S = (S + √(det S)·I)/√(tr S + 2·√(det S))` (valid for Hermitian
/// positive-definite `S`) and the adjugate inverse. Returns `None` when
/// `S` is too ill-conditioned for the whitening to stay accurate.
fn whiten(ops: &[Matrix2]) -> Option<Vec<Matrix2>> {
    let s = gram(ops);
    // Hermitian PSD: trace and determinant are real and non-negative.
    let tr = s.0[0][0].re + s.0[1][1].re;
    let det = s.0[0][0].re * s.0[1][1].re - s.0[0][1].norm_sqr();
    if det < 1e-3 || tr < 1e-2 || !det.is_finite() {
        return None;
    }
    let sqrt_det = det.sqrt();
    let denom = (tr + 2.0 * sqrt_det).sqrt();
    let mut sqrt_s = s;
    sqrt_s.0[0][0] += Complex::real(sqrt_det);
    sqrt_s.0[1][1] += Complex::real(sqrt_det);
    let sqrt_s = sqrt_s.scale(denom.recip());
    // Adjugate inverse of √S.
    let inv_det = sqrt_s.0[0][0] * sqrt_s.0[1][1] - sqrt_s.0[0][1] * sqrt_s.0[1][0];
    if inv_det.abs() < 1e-6 {
        return None;
    }
    let inv = Matrix2([
        [sqrt_s.0[1][1] / inv_det, -sqrt_s.0[0][1] / inv_det],
        [-sqrt_s.0[1][0] / inv_det, sqrt_s.0[0][0] / inv_det],
    ]);
    Some(ops.iter().map(|a| a.mul(&inv)).collect())
}

/// A reproducible "random" n-qubit state: per-qubit `u3` rotations from
/// the drawn angles, entangled by a CX chain.
fn random_state(num_qubits: usize, angles: &[f64]) -> State {
    let mut state = State::zero(num_qubits);
    for q in 0..num_qubits {
        let a = &angles[3 * q..3 * q + 3];
        state.apply_1q(q, &gates::u3(a[0], a[1], a[2]));
    }
    for q in 1..num_qubits {
        state.apply_controlled_1q(&[q - 1], q, &gates::x());
    }
    state
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Whitened random operator sets are accepted (they satisfy
    /// completeness by construction); the same set with any single
    /// operator perturbed beyond tolerance is rejected with
    /// [`SimError::NotCptp`]. Acceptance is exactly the CPTP test.
    #[test]
    fn kraus_accepted_iff_cptp(
        raw in proptest::collection::vec(-1.0..1.0f64, 32),
        num_ops in 1..4usize,
        victim in 0..4usize,
    ) {
        let arbitrary: Vec<Matrix2> = (0..num_ops)
            .map(|i| matrix_from(&raw[8 * i..8 * i + 8]))
            .collect();
        let Some(ops) = whiten(&arbitrary) else {
            // Ill-conditioned draw; skip (proptest retries with fresh
            // randomness on the next case).
            return Ok(());
        };
        // Completeness holds by construction…
        let gram_dev = {
            let s = gram(&ops);
            let mut dev = 0.0f64;
            for r in 0..2 {
                for c in 0..2 {
                    let want = if r == c { Complex::ONE } else { Complex::ZERO };
                    dev = dev.max((s.0[r][c] - want).abs());
                }
            }
            dev
        };
        prop_assume!(gram_dev <= CPTP_TOL); // numerically borderline whitenings excluded
        prop_assert!(NoiseChannel::kraus(ops.clone()).is_ok());
        prop_assert!(KrausSet::new(&ops).is_ok());

        // …and breaking any one operator breaks acceptance.
        let mut broken = ops;
        let victim = victim % broken.len();
        broken[victim] = broken[victim].scale(1.001);
        match NoiseChannel::kraus(broken) {
            Err(SimError::NotCptp(_)) => {}
            other => prop_assert!(false, "perturbed set must be rejected, got {other:?}"),
        }
    }

    /// On any state, every shipped channel's branch norms
    /// `pᵢ = ‖Kᵢ|ψ⟩‖²` sum to 1 — the CPTP completeness relation seen
    /// from the trajectory side, and the reason one uniform draw always
    /// lands in some branch.
    #[test]
    fn branch_norms_are_a_distribution_on_random_states(
        angles in proptest::collection::vec(0.0..6.3f64, 9),
        target in 0..3usize,
        raw in proptest::collection::vec(-1.0..1.0f64, 16),
    ) {
        let state = random_state(3, &angles);
        let mut channels = vec![
            NoiseChannel::BitFlip(0.3),
            NoiseChannel::Depolarizing(0.25),
            NoiseChannel::amplitude_damping(0.4).unwrap(),
            NoiseChannel::phase_damping(0.15).unwrap(),
            NoiseChannel::thermal_relaxation(0.2, 0.3).unwrap(),
        ];
        if let Some(ops) = whiten(&[matrix_from(&raw[..8]), matrix_from(&raw[8..])]) {
            if let Ok(channel) = NoiseChannel::kraus(ops) {
                channels.push(channel);
            }
        }
        for channel in channels {
            let norms = state.kraus_branch_norms(target, &channel.kraus_operators());
            let total: f64 = norms.iter().sum();
            prop_assert!(norms.iter().all(|&p| p >= 0.0));
            prop_assert!(
                (total - 1.0).abs() < 1e-9,
                "{channel:?}: branch norms sum to {total}"
            );
        }
    }

    /// `AmplitudeDamping(0)` and `PhaseDamping(0)` interleaved into any
    /// gate sequence are exact no-ops: the final state is bit-identical
    /// to the noiseless run and the RNG stream is never touched.
    #[test]
    fn zero_rate_damping_is_bit_identical_to_noiseless(
        angles in proptest::collection::vec(0.0..6.3f64, 9),
        seed in 0..u64::MAX,
    ) {
        use rand::rngs::StdRng;
        use rand::{RngCore, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut untouched = StdRng::seed_from_u64(seed);

        let noiseless = random_state(3, &angles);
        let mut noisy = State::zero(3);
        for q in 0..3 {
            let a = &angles[3 * q..3 * q + 3];
            noisy.apply_1q(q, &gates::u3(a[0], a[1], a[2]));
            NoiseChannel::AmplitudeDamping(0.0).apply(&mut noisy, q, &mut rng);
        }
        for q in 1..3 {
            noisy.apply_controlled_1q(&[q - 1], q, &gates::x());
            NoiseChannel::PhaseDamping(0.0).apply(&mut noisy, q, &mut rng);
        }
        prop_assert_eq!(&noisy, &noiseless, "zero-rate damping must not perturb the state");
        prop_assert_eq!(rng.next_u64(), untouched.next_u64(), "stream position must be untouched");
    }
}
