//! Session identity, lifecycle states, the per-session event log, and
//! terminal outcomes.

use std::fmt;
use std::time::Duration;

use qdb_core::{AssertionReport, InterruptCause, NoisySessionStats};

use crate::error::ServerError;

/// Opaque handle to a submitted session, unique for the lifetime of
/// one [`Server`](crate::Server).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionId(pub(crate) u64);

impl SessionId {
    /// The raw numeric id (also the jitter input of this session's
    /// retry backoffs).
    #[must_use]
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Reconstruct a handle from [`raw`](SessionId::raw) — for callers
    /// that persist session ids outside the process. A raw value the
    /// server never issued resolves to
    /// [`ServerError::UnknownSession`](crate::ServerError::UnknownSession)
    /// on use.
    #[must_use]
    pub fn from_raw(raw: u64) -> Self {
        Self(raw)
    }
}

impl fmt::Display for SessionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Where a session is in its lifecycle.
///
/// ```text
/// Queued ─► Running ─► Completed
///   ▲         │ ├────► Failed
///   │         │ ├────► Cancelled
///   │         │ └────► Evicted ──(resume)──┐
///   │         ▼                            │
///   │      Retrying (backoff, then re-run) │
///   │         │                            │
///   └─────────┴────────────────────────────┘
/// ```
///
/// `Completed`, `Failed`, and `Cancelled` are terminal. `Evicted` is
/// *parked*: the session keeps its checkpoint and re-enters the queue
/// on [`Server::resume`](crate::Server::resume). [`Server::wait`]
/// returns on any settled (terminal or parked) state.
///
/// [`Server::wait`]: crate::Server::wait
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionState {
    /// Admitted, waiting for a worker.
    Queued,
    /// A worker is running an attempt.
    Running,
    /// A transient trip was classified for retry; the worker is waiting
    /// out the backoff before the next attempt.
    Retrying,
    /// Preempted (by [`Server::evict`](crate::Server::evict)) and
    /// parked with its checkpoint; resumable.
    Evicted,
    /// Every breakpoint evaluated; reports available.
    Completed,
    /// Terminally failed with a typed [`ServerError`].
    Failed,
    /// Cancelled without an eviction request; terminal.
    Cancelled,
}

impl SessionState {
    /// `true` for states a session never leaves.
    #[must_use]
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            SessionState::Completed | SessionState::Failed | SessionState::Cancelled
        )
    }

    /// `true` for states [`Server::wait`](crate::Server::wait) returns
    /// on: terminal states plus the parked [`Evicted`](Self::Evicted).
    #[must_use]
    pub fn is_settled(self) -> bool {
        self.is_terminal() || self == SessionState::Evicted
    }
}

impl fmt::Display for SessionState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SessionState::Queued => "queued",
            SessionState::Running => "running",
            SessionState::Retrying => "retrying",
            SessionState::Evicted => "evicted",
            SessionState::Completed => "completed",
            SessionState::Failed => "failed",
            SessionState::Cancelled => "cancelled",
        })
    }
}

/// One rung of the graceful-degradation ladder, taken after a memory
/// trip. See [`DegradationPolicy`](crate::DegradationPolicy) for the
/// ordering and bit-identity consequences.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradeAction {
    /// Replay `pack_width` shrunk to 1 (bit-neutral).
    ShrinkPackWidth {
        /// The pack width before the shrink.
        from: usize,
    },
    /// Parallel execution disabled (bit-neutral).
    DisableParallel,
    /// `BackendChoice::Auto` re-resolved to the sparse backend
    /// (verdict-preserving, **not** bit-preserving).
    SparseFallback,
}

impl DegradeAction {
    /// `true` when this rung cannot change a single sampled bit —
    /// pack-width and parallelism invariance are pinned by the engine's
    /// equivalence suites.
    #[must_use]
    pub fn bit_neutral(self) -> bool {
        !matches!(self, DegradeAction::SparseFallback)
    }
}

impl fmt::Display for DegradeAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DegradeAction::ShrinkPackWidth { from } => {
                write!(f, "pack_width {from} → 1")
            }
            DegradeAction::DisableParallel => f.write_str("parallel execution disabled"),
            DegradeAction::SparseFallback => f.write_str("Auto backend re-resolved to sparse"),
        }
    }
}

/// One entry of a session's append-only event log: every admission,
/// interruption, retry, downgrade, eviction, and terminal transition,
/// in order. The log is the audit trail the ISSUE's failure-model
/// contract is checked against.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SessionEvent {
    /// Passed admission control and entered the queue.
    Admitted {
        /// Sessions already queued ahead of this one.
        queue_depth: usize,
    },
    /// A worker started (or restarted) the session.
    Started {
        /// 1-based attempt number.
        attempt: u32,
        /// The checkpoint position this attempt resumed from (0 for a
        /// fresh run).
        resumed_from: usize,
    },
    /// The attempt was interrupted before completing every breakpoint.
    Interrupted {
        /// The attempt that tripped.
        attempt: u32,
        /// What tripped it.
        cause: InterruptCause,
        /// Breakpoints checkpointed so far (across all attempts).
        completed: usize,
    },
    /// A transient trip was classified for retry.
    RetryScheduled {
        /// 0-based retry index.
        retry: u32,
        /// The deterministic backoff the worker waits out.
        backoff: Duration,
    },
    /// A degradation rung was taken before the next attempt.
    Degraded {
        /// The rung.
        action: DegradeAction,
        /// Whether the rung preserves bit-identity with a fresh,
        /// undegraded run.
        bit_neutral: bool,
    },
    /// [`Server::evict`](crate::Server::evict) preempted the session;
    /// it parked with its checkpoint.
    Evicted {
        /// Breakpoints safe in the checkpoint.
        completed: usize,
    },
    /// [`Server::resume`](crate::Server::resume) re-queued the parked
    /// session.
    ResumeRequested {
        /// The checkpoint position the next attempt will resume from.
        resume_from: usize,
    },
    /// Exact-oracle verdicts were served from the shared cache, so this
    /// attempt ran with cross-checking disabled and spliced the cached
    /// verdicts in.
    OracleCacheHit,
    /// The session completed; reports are final.
    Completed {
        /// Total attempts, including the first.
        attempts: u32,
    },
    /// The session failed terminally.
    Failed {
        /// The typed failure.
        error: ServerError,
    },
    /// The session was cancelled without an eviction request.
    Cancelled,
}

/// The settled result of a session: its final state, reports when it
/// completed, the typed error when it failed, the full event log, and
/// the bit-identity flag degradation rungs may clear.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionOutcome {
    /// The session.
    pub id: SessionId,
    /// The settled state — `Completed`, `Failed`, `Cancelled`, or
    /// parked `Evicted`.
    pub state: SessionState,
    /// Final reports when [`state`](SessionOutcome::state) is
    /// `Completed`.
    pub reports: Option<Vec<AssertionReport>>,
    /// Trajectory-tree census of the final attempt, when that attempt
    /// ran the tree — `states_outstanding` is the leak detector the
    /// chaos suite asserts is 0.
    pub stats: Option<NoisySessionStats>,
    /// The typed failure when [`state`](SessionOutcome::state) is
    /// `Failed`.
    pub error: Option<ServerError>,
    /// The checkpoint frontier: breakpoints evaluated across all
    /// attempts (equals the report length when completed).
    pub completed: usize,
    /// Attempts performed, including the first.
    pub attempts: u32,
    /// The append-only event log.
    pub events: Vec<SessionEvent>,
    /// `true` while every applied degradation rung (if any) was
    /// bit-neutral — i.e. the reports are still bit-identical to a
    /// fresh, undegraded, uninterrupted run of the same submission.
    pub bit_identical: bool,
}

impl SessionOutcome {
    /// The reports, when the session completed.
    #[must_use]
    pub fn reports(&self) -> Option<&[AssertionReport]> {
        self.reports.as_deref()
    }

    /// Count of degradation rungs recorded in the event log.
    #[must_use]
    pub fn degradations(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, SessionEvent::Degraded { .. }))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_classification() {
        assert!(SessionState::Completed.is_terminal());
        assert!(SessionState::Failed.is_terminal());
        assert!(SessionState::Cancelled.is_terminal());
        assert!(!SessionState::Evicted.is_terminal());
        assert!(SessionState::Evicted.is_settled());
        assert!(!SessionState::Queued.is_settled());
        assert!(!SessionState::Running.is_settled());
        assert!(!SessionState::Retrying.is_settled());
    }

    #[test]
    fn degrade_bit_neutrality() {
        assert!(DegradeAction::ShrinkPackWidth { from: 32 }.bit_neutral());
        assert!(DegradeAction::DisableParallel.bit_neutral());
        assert!(!DegradeAction::SparseFallback.bit_neutral());
    }

    #[test]
    fn session_id_display() {
        assert_eq!(SessionId(17).to_string(), "s17");
        assert_eq!(SessionId(17).raw(), 17);
    }
}
