//! The supervised session service.
//!
//! A [`Server`] owns a bounded submission queue and a pool of worker
//! threads that drain it. Each session runs under a per-session
//! [`RunBudget`] derived from the server's global policy; every
//! interruption the execution governor can produce — deadline, memory
//! ceiling, allocation failure, cancellation, contained worker panic —
//! is classified by the supervisor into retry (with deterministic
//! seeded backoff and, for memory trips, a degradation rung), parking
//! (eviction), or a typed terminal failure. Retries and resumes pick
//! up from the session's [`PartialReport`] checkpoint via
//! [`EnsembleRunner::resume_program_stats`], so completed breakpoints
//! are never recomputed and — as long as every applied degradation
//! rung is bit-neutral — the final report is bit-identical to an
//! uninterrupted run of the same submission.

use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};

use qdb_circuit::{PlanCache, Program};
use qdb_core::{
    AssertionReport, BackendChoice, CancelToken, CoreError, EnsembleConfig, EnsembleRunner,
    InterruptCause, NoisySessionStats, PartialReport,
};

use crate::config::ServerConfig;
use crate::error::ServerError;
use crate::oracle::OracleCache;
use crate::session::{DegradeAction, SessionEvent, SessionId, SessionOutcome, SessionState};

#[cfg(feature = "faultinject")]
use qdb_core::faultinject::FaultPlan;

#[cfg(feature = "faultinject")]
type FaultList = Vec<FaultPlan>;
/// Uninhabited-element stand-in so `admit` has one signature with the
/// harness compiled out.
#[cfg(not(feature = "faultinject"))]
type FaultList = Vec<std::convert::Infallible>;

/// Cumulative counters of one server's lifetime, plus the shared
/// caches' hit/miss tallies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServerMetrics {
    /// Sessions that passed admission control.
    pub submitted: u64,
    /// Sessions that reached `Completed`.
    pub completed: u64,
    /// Sessions that reached `Failed`.
    pub failed: u64,
    /// Sessions that reached `Cancelled`.
    pub cancelled: u64,
    /// Eviction parkings performed (a session evicted twice counts
    /// twice).
    pub evicted: u64,
    /// Retry attempts scheduled.
    pub retries: u64,
    /// Degradation rungs taken.
    pub degradations: u64,
    /// Compiled-plan cache hits.
    pub plan_cache_hits: u64,
    /// Compiled-plan cache misses (compilations performed).
    pub plan_cache_misses: u64,
    /// Exact-oracle cache hits (cross-checks skipped).
    pub oracle_cache_hits: u64,
    /// Exact-oracle cache misses.
    pub oracle_cache_misses: u64,
}

/// How this attempt interacts with the exact-oracle cache.
enum OracleMode {
    /// Cross-checking disabled; splice these cached verdicts in.
    Splice(Vec<Option<qdb_core::Verdict>>),
    /// Cross-checking enabled; store the verdicts on completion.
    Store,
    /// Cache not involved (cross-checking off, or a noisy session).
    Off,
}

struct Record {
    program: Program,
    config: EnsembleConfig,
    state: SessionState,
    events: Vec<SessionEvent>,
    attempts: u32,
    retries_used: u32,
    checkpoint: Option<PartialReport>,
    cancel: CancelToken,
    evict_requested: bool,
    degrade_actions: Vec<DegradeAction>,
    bit_identical: bool,
    reports: Option<Vec<AssertionReport>>,
    stats: Option<NoisySessionStats>,
    error: Option<ServerError>,
    #[cfg(feature = "faultinject")]
    pending_faults: VecDeque<FaultPlan>,
}

impl Record {
    fn frontier(&self) -> usize {
        self.reports.as_ref().map_or_else(
            || self.checkpoint.as_ref().map_or(0, |c| c.completed),
            Vec::len,
        )
    }

    fn outcome(&self, id: SessionId) -> SessionOutcome {
        SessionOutcome {
            id,
            state: self.state,
            reports: self.reports.clone(),
            stats: self.stats.clone(),
            error: self.error.clone(),
            completed: self.frontier(),
            attempts: self.attempts,
            events: self.events.clone(),
            bit_identical: self.bit_identical,
        }
    }
}

#[derive(Default)]
struct Counters {
    submitted: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    cancelled: AtomicU64,
    evicted: AtomicU64,
    retries: AtomicU64,
    degradations: AtomicU64,
}

struct Queue {
    deque: VecDeque<SessionId>,
    shutdown: bool,
}

struct Shared {
    config: ServerConfig,
    queue: Mutex<Queue>,
    /// Wakes idle workers when work arrives or shutdown begins.
    available: Condvar,
    sessions: Mutex<HashMap<SessionId, Record>>,
    /// Wakes [`Server::wait`] callers when any session settles.
    settled: Condvar,
    plan_cache: Arc<PlanCache>,
    oracle: OracleCache,
    counters: Counters,
    next_id: AtomicU64,
}

/// A supervised, fault-tolerant session service over the assertion
/// engine. See the [crate docs](crate) for the failure model.
pub struct Server {
    shared: Arc<Shared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl Server {
    /// Start a server: spawns the worker pool and the shared caches.
    #[must_use]
    pub fn start(config: ServerConfig) -> Self {
        let shared = Arc::new(Shared {
            plan_cache: Arc::new(PlanCache::new(config.plan_cache_capacity)),
            oracle: OracleCache::new(config.oracle_cache_capacity),
            queue: Mutex::new(Queue {
                deque: VecDeque::new(),
                shutdown: false,
            }),
            available: Condvar::new(),
            sessions: Mutex::new(HashMap::new()),
            settled: Condvar::new(),
            counters: Counters::default(),
            next_id: AtomicU64::new(1),
            config,
        });
        let workers = (0..shared.config.workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        Self {
            shared,
            workers: Mutex::new(workers),
        }
    }

    /// Submit a session: the program plus the ensemble configuration
    /// it should run under. Admission control applies the server's
    /// quotas before anything is queued; the session's budget is the
    /// submission's budget tightened by the server's global
    /// deadline/memory policy.
    pub fn submit(
        &self,
        program: Program,
        config: EnsembleConfig,
    ) -> Result<SessionId, ServerError> {
        self.admit(program, config, Vec::new())
    }

    /// [`submit`](Server::submit) with per-attempt injected faults:
    /// `faults[k]` arms attempt `k + 1` (and attempts past the end of
    /// the list run clean). This is how the chaos suite drives the
    /// supervisor through every failure path deterministically.
    #[cfg(feature = "faultinject")]
    pub fn submit_with_faults(
        &self,
        program: Program,
        config: EnsembleConfig,
        faults: Vec<FaultPlan>,
    ) -> Result<SessionId, ServerError> {
        self.admit(program, config, faults)
    }

    fn admit(
        &self,
        program: Program,
        mut config: EnsembleConfig,
        faults: FaultList,
    ) -> Result<SessionId, ServerError> {
        // Policy screening first: a rejection must not depend on load.
        if config.shots == 0 {
            return Err(ServerError::Rejected {
                reason: "zero shots".into(),
            });
        }
        if let Some(max) = self.shared.config.max_shots {
            if config.shots > max {
                return Err(ServerError::Rejected {
                    reason: format!(
                        "{} shots exceed the per-session quota of {max}",
                        config.shots
                    ),
                });
            }
        }
        if let Some(max) = self.shared.config.max_qubits {
            let width = program.num_qubits();
            if width > max {
                return Err(ServerError::Rejected {
                    reason: format!("{width} qubits exceed the admission ceiling of {max}"),
                });
            }
        }
        // Tighten the submission's budget with the server-wide policy:
        // the effective limit along each axis is the stricter of the
        // two.
        let mut budget = config.budget.clone();
        budget.deadline = match (budget.deadline, self.shared.config.session_deadline) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        budget.max_resident_bytes = match (
            budget.max_resident_bytes,
            self.shared.config.session_max_resident_bytes,
        ) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        let cancel = CancelToken::new();
        budget.cancel = cancel.clone();
        config = config.with_budget(budget);

        let mut queue = self.shared.queue.lock().expect("queue poisoned");
        if queue.shutdown {
            return Err(ServerError::ShuttingDown);
        }
        if queue.deque.len() >= self.shared.config.queue_capacity {
            return Err(ServerError::QueueFull {
                capacity: self.shared.config.queue_capacity,
            });
        }
        let id = SessionId(self.shared.next_id.fetch_add(1, Ordering::Relaxed));
        let record = Record {
            program,
            config,
            state: SessionState::Queued,
            events: vec![SessionEvent::Admitted {
                queue_depth: queue.deque.len(),
            }],
            attempts: 0,
            retries_used: 0,
            checkpoint: None,
            cancel,
            evict_requested: false,
            degrade_actions: Vec::new(),
            bit_identical: true,
            reports: None,
            stats: None,
            error: None,
            #[cfg(feature = "faultinject")]
            pending_faults: faults.into_iter().collect(),
        };
        #[cfg(not(feature = "faultinject"))]
        let _ = faults;
        self.shared
            .sessions
            .lock()
            .expect("session table poisoned")
            .insert(id, record);
        queue.deque.push_back(id);
        drop(queue);
        self.shared
            .counters
            .submitted
            .fetch_add(1, Ordering::Relaxed);
        self.shared.available.notify_one();
        Ok(id)
    }

    /// Block until the session settles (terminal or parked-evicted)
    /// and return its outcome.
    pub fn wait(&self, id: SessionId) -> Result<SessionOutcome, ServerError> {
        let mut sessions = self.shared.sessions.lock().expect("session table poisoned");
        loop {
            let record = sessions.get(&id).ok_or(ServerError::UnknownSession(id))?;
            if record.state.is_settled() {
                return Ok(record.outcome(id));
            }
            sessions = self
                .shared
                .settled
                .wait(sessions)
                .expect("session table poisoned");
        }
    }

    /// The session's current lifecycle state.
    pub fn state(&self, id: SessionId) -> Result<SessionState, ServerError> {
        let sessions = self.shared.sessions.lock().expect("session table poisoned");
        sessions
            .get(&id)
            .map(|r| r.state)
            .ok_or(ServerError::UnknownSession(id))
    }

    /// The session's outcome if it has settled, `None` while it is
    /// still queued, running, or retrying.
    pub fn outcome(&self, id: SessionId) -> Result<Option<SessionOutcome>, ServerError> {
        let sessions = self.shared.sessions.lock().expect("session table poisoned");
        let record = sessions.get(&id).ok_or(ServerError::UnknownSession(id))?;
        Ok(record.state.is_settled().then(|| record.outcome(id)))
    }

    /// Cancel a session. Queued sessions cancel immediately; running
    /// and retrying sessions trip cooperatively at their next governor
    /// poll. Terminal — a cancelled session cannot resume.
    pub fn cancel(&self, id: SessionId) -> Result<(), ServerError> {
        let mut sessions = self.shared.sessions.lock().expect("session table poisoned");
        let record = sessions
            .get_mut(&id)
            .ok_or(ServerError::UnknownSession(id))?;
        match record.state {
            SessionState::Queued | SessionState::Evicted => {
                record.cancel.cancel();
                record.state = SessionState::Cancelled;
                record.events.push(SessionEvent::Cancelled);
                self.shared
                    .counters
                    .cancelled
                    .fetch_add(1, Ordering::Relaxed);
                self.shared.settled.notify_all();
            }
            SessionState::Running | SessionState::Retrying => {
                record.evict_requested = false;
                record.cancel.cancel();
            }
            _ => {}
        }
        Ok(())
    }

    /// Preempt a session, parking it in the `Evicted` state with its
    /// checkpoint intact. Queued sessions park immediately; running
    /// and retrying sessions trip cooperatively and park at the next
    /// governor poll. Parked sessions re-enter the queue via
    /// [`resume`](Server::resume).
    pub fn evict(&self, id: SessionId) -> Result<(), ServerError> {
        let mut sessions = self.shared.sessions.lock().expect("session table poisoned");
        let record = sessions
            .get_mut(&id)
            .ok_or(ServerError::UnknownSession(id))?;
        match record.state {
            SessionState::Queued => {
                record.state = SessionState::Evicted;
                record.events.push(SessionEvent::Evicted {
                    completed: record.frontier(),
                });
                self.shared.counters.evicted.fetch_add(1, Ordering::Relaxed);
                self.shared.settled.notify_all();
            }
            SessionState::Running | SessionState::Retrying => {
                record.evict_requested = true;
                record.cancel.cancel();
            }
            _ => {}
        }
        Ok(())
    }

    /// Re-queue a parked (evicted) session. The next attempt resumes
    /// from the checkpoint; the retry allowance is refreshed (eviction
    /// is operator-driven load shedding, not session failure).
    pub fn resume(&self, id: SessionId) -> Result<(), ServerError> {
        let mut queue = self.shared.queue.lock().expect("queue poisoned");
        if queue.shutdown {
            return Err(ServerError::ShuttingDown);
        }
        if queue.deque.len() >= self.shared.config.queue_capacity {
            return Err(ServerError::QueueFull {
                capacity: self.shared.config.queue_capacity,
            });
        }
        let mut sessions = self.shared.sessions.lock().expect("session table poisoned");
        let record = sessions
            .get_mut(&id)
            .ok_or(ServerError::UnknownSession(id))?;
        if record.state != SessionState::Evicted {
            return Err(ServerError::NotEvicted {
                id,
                state: record.state,
            });
        }
        record.cancel = CancelToken::new();
        record.evict_requested = false;
        record.retries_used = 0;
        record.state = SessionState::Queued;
        record.events.push(SessionEvent::ResumeRequested {
            resume_from: record.frontier(),
        });
        drop(sessions);
        queue.deque.push_back(id);
        drop(queue);
        self.shared.available.notify_one();
        Ok(())
    }

    /// Sessions currently waiting in the submission queue.
    #[must_use]
    pub fn queue_depth(&self) -> usize {
        self.shared
            .queue
            .lock()
            .expect("queue poisoned")
            .deque
            .len()
    }

    /// Lifetime counters plus cache hit/miss tallies.
    #[must_use]
    pub fn metrics(&self) -> ServerMetrics {
        let c = &self.shared.counters;
        ServerMetrics {
            submitted: c.submitted.load(Ordering::Relaxed),
            completed: c.completed.load(Ordering::Relaxed),
            failed: c.failed.load(Ordering::Relaxed),
            cancelled: c.cancelled.load(Ordering::Relaxed),
            evicted: c.evicted.load(Ordering::Relaxed),
            retries: c.retries.load(Ordering::Relaxed),
            degradations: c.degradations.load(Ordering::Relaxed),
            plan_cache_hits: self.shared.plan_cache.hits(),
            plan_cache_misses: self.shared.plan_cache.misses(),
            oracle_cache_hits: self.shared.oracle.hits(),
            oracle_cache_misses: self.shared.oracle.misses(),
        }
    }

    /// Graceful shutdown: stop admitting, let in-flight attempts
    /// finish (including pending retries), join the pool, and cancel
    /// whatever never left the queue. Idempotent.
    pub fn shutdown(&self) {
        {
            let mut queue = self.shared.queue.lock().expect("queue poisoned");
            queue.shutdown = true;
        }
        self.shared.available.notify_all();
        let workers: Vec<JoinHandle<()>> =
            std::mem::take(&mut *self.workers.lock().expect("worker handles poisoned"));
        for handle in workers {
            let _ = handle.join();
        }
        // Whatever is still queued will never run: settle it.
        let mut sessions = self.shared.sessions.lock().expect("session table poisoned");
        for record in sessions.values_mut() {
            if matches!(record.state, SessionState::Queued) {
                record.state = SessionState::Cancelled;
                record.events.push(SessionEvent::Cancelled);
                self.shared
                    .counters
                    .cancelled
                    .fetch_add(1, Ordering::Relaxed);
            }
        }
        drop(sessions);
        self.shared.settled.notify_all();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let id = {
            let mut queue = shared.queue.lock().expect("queue poisoned");
            loop {
                if let Some(id) = queue.deque.pop_front() {
                    break id;
                }
                if queue.shutdown {
                    return;
                }
                queue = shared.available.wait(queue).expect("queue poisoned");
            }
        };
        run_session(shared, id);
    }
}

/// One attempt's inputs, snapshotted under the session lock so the
/// simulation itself runs without holding it.
struct Attempt {
    program: Program,
    config: EnsembleConfig,
    checkpoint: Option<PartialReport>,
    oracle: OracleMode,
}

/// Drive one session to a settled state: attempts, retries with
/// backoff, degradation, eviction parking. Runs entirely on the worker
/// thread that popped the session.
fn run_session(shared: &Arc<Shared>, id: SessionId) {
    loop {
        let attempt = {
            let mut sessions = shared.sessions.lock().expect("session table poisoned");
            let Some(record) = sessions.get_mut(&id) else {
                return;
            };
            match record.state {
                SessionState::Queued | SessionState::Retrying => {}
                // Settled or parked while its id was still in the
                // deque (cancel/evict handle queued sessions in
                // place): nothing to run.
                _ => return,
            }
            // Cancelled or evicted while waiting out a backoff: settle
            // without starting another attempt.
            if record.cancel.is_cancelled() {
                settle_preempted(shared, record, id);
                return;
            }
            record.state = SessionState::Running;
            record.attempts += 1;
            let resumed_from = record.frontier();
            record.events.push(SessionEvent::Started {
                attempt: record.attempts,
                resumed_from,
            });
            snapshot_attempt(shared, record)
        };

        let result = catch_unwind(AssertUnwindSafe(|| {
            let runner = EnsembleRunner::new(attempt.config.clone())
                .with_plan_cache(Arc::clone(&shared.plan_cache));
            match &attempt.checkpoint {
                Some(partial) => runner.resume_program_stats(&attempt.program, partial),
                None => runner.check_program_stats(&attempt.program),
            }
        }));

        match classify(shared, id, attempt, result) {
            Some(backoff) => thread::sleep(backoff),
            None => return,
        }
    }
}

/// A cancel observed outside a running attempt: park or settle
/// according to the eviction flag. Caller holds the session lock.
fn settle_preempted(shared: &Arc<Shared>, record: &mut Record, _id: SessionId) {
    if record.evict_requested {
        record.evict_requested = false;
        record.state = SessionState::Evicted;
        record.events.push(SessionEvent::Evicted {
            completed: record.frontier(),
        });
        shared.counters.evicted.fetch_add(1, Ordering::Relaxed);
    } else {
        record.state = SessionState::Cancelled;
        record.events.push(SessionEvent::Cancelled);
        shared.counters.cancelled.fetch_add(1, Ordering::Relaxed);
    }
    shared.settled.notify_all();
}

/// Build the attempt's effective configuration: degradation rungs
/// applied, the session's cancel token armed, the next pending
/// injected fault (if any) armed, and the oracle cache consulted.
/// Caller holds the session lock.
fn snapshot_attempt(shared: &Arc<Shared>, record: &mut Record) -> Attempt {
    let mut config = record.config.clone();
    for action in &record.degrade_actions {
        config = match action {
            DegradeAction::ShrinkPackWidth { .. } => config.with_pack_width(1),
            DegradeAction::DisableParallel => config.with_parallel(false),
            DegradeAction::SparseFallback => config.with_backend(BackendChoice::Sparse),
        };
    }
    // The session's budget template is unarmed; each attempt arms a
    // fresh clone so a fault consumed by attempt k never re-fires on
    // attempt k + 1.
    let mut budget = config.budget.clone();
    budget.cancel = record.cancel.clone();
    #[cfg(feature = "faultinject")]
    if let Some(plan) = record.pending_faults.pop_front() {
        budget = budget.with_injected_fault(plan);
    }
    config = config.with_budget(budget);

    // Oracle cache: only noiseless cross-checked sessions, and only
    // attempts starting from position 0 may *store* (a resumed
    // attempt's prefix verdicts came from the checkpoint, not this
    // run).
    let oracle = if config.noise.is_none() && config.exact_cross_check {
        match shared
            .oracle
            .get(record.program.fingerprint(), config.exact_tol)
        {
            Some(verdicts) => {
                config.exact_cross_check = false;
                record.events.push(SessionEvent::OracleCacheHit);
                OracleMode::Splice(verdicts)
            }
            None if record.checkpoint.is_none() => OracleMode::Store,
            None => OracleMode::Off,
        }
    } else {
        OracleMode::Off
    };

    Attempt {
        program: record.program.clone(),
        config,
        checkpoint: record.checkpoint.clone(),
        oracle,
    }
}

type AttemptResult = Result<
    Result<(Vec<AssertionReport>, Option<NoisySessionStats>), CoreError>,
    Box<dyn std::any::Any + Send>,
>;

/// Classify an attempt's result into the session's next move. Returns
/// the backoff to wait out before retrying, or `None` when the session
/// settled (or parked).
fn classify(
    shared: &Arc<Shared>,
    id: SessionId,
    attempt: Attempt,
    result: AttemptResult,
) -> Option<std::time::Duration> {
    let mut sessions = shared.sessions.lock().expect("session table poisoned");
    let record = sessions.get_mut(&id)?;
    match result {
        Ok(Ok((mut reports, stats))) => {
            match attempt.oracle {
                OracleMode::Splice(verdicts) => {
                    for (report, verdict) in reports.iter_mut().zip(verdicts) {
                        report.exact = verdict;
                    }
                }
                OracleMode::Store => {
                    shared.oracle.insert(
                        record.program.fingerprint(),
                        record.config.exact_tol,
                        reports.iter().map(|r| r.exact).collect(),
                    );
                }
                OracleMode::Off => {}
            }
            record.state = SessionState::Completed;
            record.reports = Some(reports);
            record.stats = stats;
            record.events.push(SessionEvent::Completed {
                attempts: record.attempts,
            });
            shared.counters.completed.fetch_add(1, Ordering::Relaxed);
            shared.settled.notify_all();
            None
        }
        Ok(Err(CoreError::Interrupted { cause, partial })) => {
            record.stats = None;
            record.checkpoint = Some(*partial);
            let completed = record.frontier();
            record.events.push(SessionEvent::Interrupted {
                attempt: record.attempts,
                cause: cause.clone(),
                completed,
            });
            match cause {
                InterruptCause::Cancelled => {
                    settle_preempted(shared, record, id);
                    None
                }
                InterruptCause::WorkerPanic { message } => {
                    settle_failed(shared, record, ServerError::Panicked { message });
                    None
                }
                transient @ (InterruptCause::Deadline { .. }
                | InterruptCause::MemoryBudget { .. }
                | InterruptCause::AllocationFailed { .. }) => {
                    if matches!(
                        transient,
                        InterruptCause::MemoryBudget { .. }
                            | InterruptCause::AllocationFailed { .. }
                    ) {
                        degrade(shared, record);
                    }
                    let retry = record.retries_used;
                    if retry < shared.config.retry.max_retries {
                        record.retries_used += 1;
                        let backoff = shared.config.retry.backoff_for(id.raw(), retry);
                        record.state = SessionState::Retrying;
                        record
                            .events
                            .push(SessionEvent::RetryScheduled { retry, backoff });
                        shared.counters.retries.fetch_add(1, Ordering::Relaxed);
                        Some(backoff)
                    } else {
                        settle_failed(
                            shared,
                            record,
                            ServerError::RetriesExhausted {
                                cause: transient,
                                attempts: record.attempts,
                            },
                        );
                        None
                    }
                }
                // `InterruptCause` is non-exhaustive: treat unknown
                // causes as unretriable rather than loop on them.
                other => {
                    let attempts = record.attempts;
                    settle_failed(
                        shared,
                        record,
                        ServerError::RetriesExhausted {
                            cause: other,
                            attempts,
                        },
                    );
                    None
                }
            }
        }
        Ok(Err(other)) => {
            settle_failed(shared, record, ServerError::Session(other));
            None
        }
        // The engine contains worker panics itself; this is the
        // belt-and-braces boundary for panics outside the engines
        // (supervisor bugs, cache plumbing). The worker thread
        // survives either way.
        Err(payload) => {
            let message = payload
                .downcast_ref::<&str>()
                .map(ToString::to_string)
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "opaque panic payload".into());
            settle_failed(shared, record, ServerError::Panicked { message });
            None
        }
    }
}

/// Take the next available degradation rung after a memory-class trip.
/// Caller holds the session lock.
fn degrade(shared: &Arc<Shared>, record: &mut Record) {
    let policy = shared.config.degradation;
    let taken = |matcher: fn(&DegradeAction) -> bool| record.degrade_actions.iter().any(matcher);
    let action = if policy.shrink_pack_width
        && record.config.pack_width > 1
        && !taken(|a| matches!(a, DegradeAction::ShrinkPackWidth { .. }))
    {
        Some(DegradeAction::ShrinkPackWidth {
            from: record.config.pack_width,
        })
    } else if policy.disable_parallel
        && record.config.parallel
        && !taken(|a| matches!(a, DegradeAction::DisableParallel))
    {
        Some(DegradeAction::DisableParallel)
    } else if policy.sparse_fallback
        && record.config.backend == BackendChoice::Auto
        && !taken(|a| matches!(a, DegradeAction::SparseFallback))
    {
        Some(DegradeAction::SparseFallback)
    } else {
        None
    };
    if let Some(action) = action {
        let bit_neutral = action.bit_neutral();
        if !bit_neutral {
            record.bit_identical = false;
            // A bit-affecting rung invalidates the dense checkpoint's
            // RNG alignment for the *remaining* breakpoints only — the
            // evaluated prefix stays valid, so it is kept; the report
            // is flagged instead.
        }
        record.degrade_actions.push(action);
        record.events.push(SessionEvent::Degraded {
            action,
            bit_neutral,
        });
        shared.counters.degradations.fetch_add(1, Ordering::Relaxed);
    }
}

/// Terminal failure bookkeeping. Caller holds the session lock.
fn settle_failed(shared: &Arc<Shared>, record: &mut Record, error: ServerError) {
    record.state = SessionState::Failed;
    record.events.push(SessionEvent::Failed {
        error: error.clone(),
    });
    record.error = Some(error);
    shared.counters.failed.fetch_add(1, Ordering::Relaxed);
    shared.settled.notify_all();
}
