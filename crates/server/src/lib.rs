//! `qdb-server` — a supervised, fault-tolerant session service over
//! the assertion engine.
//!
//! The debugger core ([`qdb-core`](qdb_core)) checks one program per
//! call and reports interruptions as typed
//! [`CoreError::Interrupted`](qdb_core::CoreError) values carrying a
//! resumable checkpoint. This crate turns that primitive into a
//! *service*: a [`Server`] multiplexes many concurrent
//! assertion-checking sessions through a bounded worker pool and
//! supervises every failure the execution governor can surface.
//!
//! The failure model, end to end:
//!
//! * **Admission control & backpressure** — submissions pass policy
//!   screening (shot quota, qubit ceiling) and a bounded queue;
//!   overload fails fast with [`ServerError::QueueFull`] instead of
//!   queueing unboundedly, and policy violations with
//!   [`ServerError::Rejected`]. Each admitted session runs under a
//!   [`RunBudget`](qdb_core::RunBudget) tightened by the server's
//!   global deadline/memory policy.
//! * **Supervision & retry** — worker panics are contained (the pool
//!   survives; the session fails typed). Transient trips — deadline,
//!   memory ceiling, allocation failure — retry with deterministic
//!   seeded exponential backoff ([`RetryPolicy`]) up to a cap, each
//!   retry resuming from the session's checkpoint.
//! * **Checkpoint-resume** — interrupted and evicted sessions keep
//!   their [`PartialReport`](qdb_core::PartialReport) frontier;
//!   resumed runs recompute only the suffix and are bit-identical to
//!   an uninterrupted run (the strict-prefix contract
//!   `resume_equivalence.rs` pins in the core crate).
//! * **Graceful degradation** — repeated memory trips walk a ladder
//!   ([`DegradationPolicy`]): shrink the replay pack width, disable
//!   parallel execution (both bit-neutral), then re-resolve an `Auto`
//!   backend to the sparse engine (verdict-preserving, bit-affecting,
//!   and flagged in the event log and outcome).
//! * **Caching** — compiled plans are shared through the
//!   [`PlanCache`](qdb_circuit::PlanCache) and exact-oracle verdicts
//!   through the [`OracleCache`], both LRU with hit/miss counters
//!   surfaced in [`ServerMetrics`]; a warm resubmission skips both
//!   compilation and the exact cross-check without changing a single
//!   statistical bit.
//!
//! Every lifecycle transition of every session lands in its
//! append-only [`SessionEvent`] log, so "what happened to s17?" is
//! always answerable from the [`SessionOutcome`] alone.

#![warn(missing_docs)]

mod config;
mod error;
mod oracle;
mod server;
mod session;

pub use config::{DegradationPolicy, RetryPolicy, ServerConfig};
pub use error::ServerError;
pub use oracle::OracleCache;
pub use server::{Server, ServerMetrics};
pub use session::{DegradeAction, SessionEvent, SessionId, SessionOutcome, SessionState};
