//! Typed failures of the session service.

use std::error::Error;
use std::fmt;

use qdb_core::{CoreError, InterruptCause};

use crate::session::SessionId;

/// Errors surfaced by [`Server`](crate::Server) APIs and terminal
/// session failures. Every way a session can go wrong is a variant
/// here — supervisors classify by matching, never by parsing `Display`.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ServerError {
    /// Admission control refused the submission because the bounded
    /// queue is at capacity. Backpressure, not failure: resubmit after
    /// draining.
    QueueFull {
        /// The configured queue capacity that was hit.
        capacity: usize,
    },
    /// Admission control refused the submission on policy grounds
    /// (zero shots, register wider than the admission ceiling, shot
    /// count over quota). Resubmitting the same session will never
    /// succeed.
    Rejected {
        /// Why the session can never be admitted.
        reason: String,
    },
    /// The server is shutting down and accepts no new work.
    ShuttingDown,
    /// No session with this id was ever admitted.
    UnknownSession(SessionId),
    /// [`Server::resume`](crate::Server::resume) was called on a
    /// session that is not parked in the `Evicted` state.
    NotEvicted {
        /// The session that was asked to resume.
        id: SessionId,
        /// The state it was actually in.
        state: crate::session::SessionState,
    },
    /// A transient interruption (deadline, memory ceiling, allocation
    /// failure) recurred past the retry policy's cap. The session's
    /// checkpoint survives in its outcome's event log.
    RetriesExhausted {
        /// The cause of the final, unretried interruption.
        cause: InterruptCause,
        /// Attempts performed, including the first.
        attempts: u32,
    },
    /// A worker panicked while running the session. The panic was
    /// contained — sibling sessions and the worker pool are unharmed —
    /// and the session is terminally failed (panics are bugs, not
    /// load; retrying them would loop).
    Panicked {
        /// The panic payload's message, when it carried one.
        message: String,
    },
    /// The assertion engine failed in a non-interrupt way (bad
    /// configuration, unsupported backend, simulator error).
    Session(CoreError),
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::QueueFull { capacity } => {
                write!(f, "submission queue is full ({capacity} pending sessions)")
            }
            ServerError::Rejected { reason } => write!(f, "session rejected: {reason}"),
            ServerError::ShuttingDown => f.write_str("server is shutting down"),
            ServerError::UnknownSession(id) => write!(f, "unknown session {id}"),
            ServerError::NotEvicted { id, state } => {
                write!(f, "session {id} is {state}, not evicted; cannot resume")
            }
            ServerError::RetriesExhausted { cause, attempts } => {
                write!(f, "retries exhausted after {attempts} attempts ({cause})")
            }
            ServerError::Panicked { message } => write!(f, "session worker panicked: {message}"),
            ServerError::Session(e) => write!(f, "session failed: {e}"),
        }
    }
}

impl Error for ServerError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ServerError::Session(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for ServerError {
    fn from(e: CoreError) -> Self {
        ServerError::Session(e)
    }
}
