//! Shared exact-oracle verdict cache.
//!
//! The exact cross-check is a deterministic, RNG-free function of the
//! program and the tolerance: it simulates ideal amplitudes and
//! compares them against the asserted state class, consuming no
//! randomness from the ensemble stream. That makes its verdicts safe
//! to cache across sessions — a warm resubmission runs with
//! cross-checking *disabled* (skipping the ideal simulation entirely)
//! and splices the cached verdicts into its reports, leaving every
//! statistical bit unchanged.
//!
//! Keys are `(program fingerprint, tolerance bits)`; noisy sessions
//! bypass the cache entirely (their engines interleave the check with
//! noise plumbing, so the server does not assume reuse is sound).
//! Same LRU + counter shape as
//! [`PlanCache`](qdb_circuit::PlanCache).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use qdb_core::Verdict;

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct OracleKey {
    fingerprint: u64,
    tol_bits: u64,
}

#[derive(Debug)]
struct Slot {
    verdicts: Vec<Option<Verdict>>,
    touched: u64,
}

#[derive(Debug, Default)]
struct Shelf {
    slots: HashMap<OracleKey, Slot>,
    tick: u64,
}

/// LRU cache of exact-oracle verdict vectors, shared by every session
/// of one server. Hit/miss counters are cumulative and monotone.
#[derive(Debug)]
pub struct OracleCache {
    shelf: Mutex<Shelf>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl OracleCache {
    /// A cache holding at most `capacity` verdict vectors (clamped to
    /// at least 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            shelf: Mutex::new(Shelf::default()),
            capacity: capacity.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The cached verdict vector for `(fingerprint, tol)`, bumping its
    /// recency; `None` (and a miss) when cold.
    #[must_use]
    pub fn get(&self, fingerprint: u64, tol: f64) -> Option<Vec<Option<Verdict>>> {
        let key = OracleKey {
            fingerprint,
            tol_bits: tol.to_bits(),
        };
        let mut shelf = self.shelf.lock().expect("oracle cache poisoned");
        shelf.tick += 1;
        let tick = shelf.tick;
        match shelf.slots.get_mut(&key) {
            Some(slot) => {
                slot.touched = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(slot.verdicts.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Record the verdict vector a completed cross-checked run
    /// produced, evicting the least-recently-used entry at capacity.
    pub fn insert(&self, fingerprint: u64, tol: f64, verdicts: Vec<Option<Verdict>>) {
        let key = OracleKey {
            fingerprint,
            tol_bits: tol.to_bits(),
        };
        let mut shelf = self.shelf.lock().expect("oracle cache poisoned");
        shelf.tick += 1;
        let tick = shelf.tick;
        if !shelf.slots.contains_key(&key) && shelf.slots.len() >= self.capacity {
            if let Some(evict) = shelf
                .slots
                .iter()
                .min_by_key(|(_, slot)| slot.touched)
                .map(|(k, _)| *k)
            {
                shelf.slots.remove(&evict);
            }
        }
        shelf.slots.insert(
            key,
            Slot {
                verdicts,
                touched: tick,
            },
        );
    }

    /// Cumulative lookups answered from the cache.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cumulative lookups that found nothing.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries currently cached.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shelf
            .lock()
            .expect("oracle cache poisoned")
            .slots
            .len()
    }

    /// `true` when nothing is cached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warm_lookup_hits_and_counts() {
        let cache = OracleCache::new(4);
        assert_eq!(cache.get(1, 1e-6), None);
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        cache.insert(1, 1e-6, vec![Some(Verdict::Pass), None]);
        assert_eq!(cache.get(1, 1e-6), Some(vec![Some(Verdict::Pass), None]));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        // A different tolerance is a different key.
        assert_eq!(cache.get(1, 1e-7), None);
    }

    #[test]
    fn lru_evicts_coldest() {
        let cache = OracleCache::new(2);
        cache.insert(1, 0.0, vec![Some(Verdict::Pass)]);
        cache.insert(2, 0.0, vec![Some(Verdict::Fail)]);
        assert!(cache.get(1, 0.0).is_some()); // 1 is now warmer than 2
        cache.insert(3, 0.0, vec![None]);
        assert_eq!(cache.len(), 2);
        assert!(cache.get(2, 0.0).is_none(), "coldest entry was evicted");
        assert!(cache.get(1, 0.0).is_some());
        assert!(cache.get(3, 0.0).is_some());
    }
}
