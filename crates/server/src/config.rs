//! Server-wide policy: pool sizing, admission quotas, retry/backoff,
//! and the degradation ladder.

use std::time::Duration;

/// Deterministic seeded exponential backoff. `backoff_for` is a pure
/// function of `(policy, session id, retry index)`, so a replayed
/// session schedules the exact same delays — retry timing is part of
/// the reproducible record, not noise.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries granted per session beyond the first attempt. Transient
    /// trips past this cap become
    /// [`ServerError::RetriesExhausted`](crate::ServerError::RetriesExhausted).
    pub max_retries: u32,
    /// Delay before the first retry; each further retry doubles it.
    pub base_backoff: Duration,
    /// Ceiling the doubled delays saturate at.
    pub max_backoff: Duration,
    /// Seed for the ±25% decorrelation jitter.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_retries: 3,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(50),
            jitter_seed: 0x5144_4253, // "QDBS"
        }
    }
}

/// splitmix64 — the same avalanche the engines use for per-shot seed
/// derivation, reused here so backoff jitter is deterministic without
/// pulling in an RNG.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl RetryPolicy {
    /// The delay before retry number `retry` (0-based) of `session`:
    /// `base · 2^retry`, jittered to 75–125% by a hash of
    /// `(jitter_seed, session, retry)`, saturated at
    /// [`max_backoff`](RetryPolicy::max_backoff).
    #[must_use]
    pub fn backoff_for(&self, session: u64, retry: u32) -> Duration {
        let doubled = self
            .base_backoff
            .saturating_mul(1u32.checked_shl(retry.min(20)).unwrap_or(u32::MAX));
        let capped = doubled.min(self.max_backoff);
        let h = splitmix64(self.jitter_seed ^ session.rotate_left(17) ^ u64::from(retry));
        // 75% + (h mod 50)% of the capped delay, in nanosecond space.
        let factor = 75 + (h % 51);
        let nanos = capped.as_nanos().saturating_mul(u128::from(factor)) / 100;
        Duration::from_nanos(u64::try_from(nanos).unwrap_or(u64::MAX))
    }
}

/// Which rungs of the degradation ladder the server may take when a
/// session trips its memory ceiling repeatedly. Rungs are ordered
/// bit-neutral first; the final rung changes sampled bits and is
/// flagged in the session's event log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DegradationPolicy {
    /// Rung 1: shrink the trajectory tree's replay `pack_width` to 1,
    /// releasing pack lane buffers. Bit-neutral.
    pub shrink_pack_width: bool,
    /// Rung 2: disable parallel execution, collapsing the replay wave
    /// (and per-prefix worker states) to a single resident state.
    /// Bit-neutral.
    pub disable_parallel: bool,
    /// Rung 3: re-resolve [`BackendChoice::Auto`](qdb_core::BackendChoice::Auto)
    /// to the sparse amplitude-map backend, trading time for a resident
    /// footprint that scales with live support instead of `2ⁿ`.
    /// Verdict-preserving but **not** bit-preserving (the sparse engine
    /// consumes randomness its own way), so sessions that take this
    /// rung are marked non-bit-identical. Only applies to sessions
    /// submitted with `Auto`; explicit backend choices are never
    /// overridden.
    pub sparse_fallback: bool,
}

impl Default for DegradationPolicy {
    fn default() -> Self {
        Self {
            shrink_pack_width: true,
            disable_parallel: true,
            sparse_fallback: true,
        }
    }
}

impl DegradationPolicy {
    /// Degradation disabled entirely: memory trips only consume
    /// retries.
    #[must_use]
    pub fn none() -> Self {
        Self {
            shrink_pack_width: false,
            disable_parallel: false,
            sparse_fallback: false,
        }
    }
}

/// Configuration of a [`Server`](crate::Server).
#[derive(Debug, Clone, PartialEq)]
pub struct ServerConfig {
    /// Worker threads in the pool — the number of sessions that run
    /// concurrently.
    pub workers: usize,
    /// Capacity of the bounded submission queue. Submissions beyond it
    /// fail fast with [`ServerError::QueueFull`](crate::ServerError::QueueFull).
    pub queue_capacity: usize,
    /// Admission ceiling on program width, in qubits. Wider programs
    /// are [`Rejected`](crate::ServerError::Rejected) at submit time.
    pub max_qubits: Option<usize>,
    /// Admission quota on shots per session.
    pub max_shots: Option<usize>,
    /// Global per-session wall-clock policy, merged into each
    /// submission's budget when the submission does not set a tighter
    /// deadline of its own.
    pub session_deadline: Option<Duration>,
    /// Global per-session resident-memory policy, merged the same way.
    pub session_max_resident_bytes: Option<usize>,
    /// Retry/backoff policy for transient interruptions.
    pub retry: RetryPolicy,
    /// Which degradation rungs memory-tripped sessions may take.
    pub degradation: DegradationPolicy,
    /// Capacity of the shared compiled-plan LRU cache.
    pub plan_cache_capacity: usize,
    /// Capacity of the shared exact-oracle verdict LRU cache.
    pub oracle_cache_capacity: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            queue_capacity: 64,
            max_qubits: None,
            max_shots: None,
            session_deadline: None,
            session_max_resident_bytes: None,
            retry: RetryPolicy::default(),
            degradation: DegradationPolicy::default(),
            plan_cache_capacity: 64,
            oracle_cache_capacity: 64,
        }
    }
}

impl ServerConfig {
    /// This configuration with `workers` pool threads (clamped to at
    /// least 1).
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// This configuration with a submission-queue capacity (clamped to
    /// at least 1).
    #[must_use]
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity.max(1);
        self
    }

    /// This configuration with an admission ceiling on program width.
    #[must_use]
    pub fn with_max_qubits(mut self, qubits: usize) -> Self {
        self.max_qubits = Some(qubits);
        self
    }

    /// This configuration with an admission quota on shots.
    #[must_use]
    pub fn with_max_shots(mut self, shots: usize) -> Self {
        self.max_shots = Some(shots);
        self
    }

    /// This configuration with a global per-session deadline policy.
    #[must_use]
    pub fn with_session_deadline(mut self, deadline: Duration) -> Self {
        self.session_deadline = Some(deadline);
        self
    }

    /// This configuration with a global per-session memory policy.
    #[must_use]
    pub fn with_session_max_resident_bytes(mut self, bytes: usize) -> Self {
        self.session_max_resident_bytes = Some(bytes);
        self
    }

    /// This configuration with the given retry policy.
    #[must_use]
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// This configuration with the given degradation policy.
    #[must_use]
    pub fn with_degradation(mut self, degradation: DegradationPolicy) -> Self {
        self.degradation = degradation;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_and_monotone_capped() {
        let policy = RetryPolicy::default();
        let a = policy.backoff_for(7, 0);
        assert_eq!(a, policy.backoff_for(7, 0), "same inputs, same delay");
        assert_ne!(
            policy.backoff_for(7, 0),
            policy.backoff_for(8, 0),
            "jitter decorrelates sessions"
        );
        // Every delay stays within 75–125% of the capped exponential.
        for retry in 0..12 {
            let d = policy.backoff_for(7, retry);
            let ideal = policy
                .base_backoff
                .saturating_mul(1 << retry.min(20))
                .min(policy.max_backoff);
            assert!(
                d >= ideal.mul_f64(0.74),
                "retry {retry}: {d:?} < 75% of {ideal:?}"
            );
            assert!(
                d <= ideal.mul_f64(1.26),
                "retry {retry}: {d:?} > 125% of {ideal:?}"
            );
        }
        // Deep retries saturate near the cap instead of overflowing.
        assert!(policy.backoff_for(7, 63) <= policy.max_backoff.mul_f64(1.26));
    }

    #[test]
    fn config_builders_clamp() {
        let cfg = ServerConfig::default()
            .with_workers(0)
            .with_queue_capacity(0);
        assert_eq!(cfg.workers, 1);
        assert_eq!(cfg.queue_capacity, 1);
    }
}
