//! Functional contract of the session service, no fault injection:
//! admission control and backpressure, bit-identical results through
//! the server, warm plan/oracle caches, cancellation, evict → resume,
//! deadline retries, the memory degradation ladder, and graceful
//! shutdown.

use std::time::Duration;

use qdb_circuit::{GateSink, Program, QReg};
use qdb_core::{
    BackendChoice, EnsembleConfig, EnsembleRunner, ExecutionStrategy, RunBudget, Verdict,
};
use qdb_server::{
    DegradeAction, RetryPolicy, Server, ServerConfig, ServerError, SessionEvent, SessionState,
};
use qdb_sim::NoiseModel;

/// Four decisive assertions, small and fast.
fn staircase() -> Program {
    let mut p = Program::new();
    let a: QReg = p.alloc_register("a", 2);
    let b: QReg = p.alloc_register("b", 2);
    p.prep_int(&a, 3);
    p.assert_classical(&a, 3);
    p.h(b.bit(0));
    p.cx(b.bit(0), b.bit(1));
    let b0 = QReg::new("b0", vec![b.bit(0)]);
    let b1 = QReg::new("b1", vec![b.bit(1)]);
    p.assert_entangled(&b0, &b1);
    for i in 0..2 {
        p.h(a.bit(i));
    }
    p.t(a.bit(0));
    p.cz(a.bit(0), a.bit(1));
    p.assert_superposition(&a);
    p.h(a.bit(0));
    p.assert_superposition(&b);
    p
}

/// A deliberately heavy session: wide dense state, enough work that a
/// driver thread can observe it `Running` and preempt it mid-flight.
fn heavy_program() -> Program {
    let mut p = Program::new();
    let q = p.alloc_register("q", 20);
    for round in 0..4 {
        for i in 0..20 {
            p.h(q.bit(i));
        }
        p.t(q.bit(round));
        p.assert_superposition(&QReg::new("probe", vec![q.bit(0), q.bit(1)]));
    }
    p
}

fn fast_config() -> EnsembleConfig {
    EnsembleConfig::default().with_shots(32).with_seed(2019)
}

/// Narrow enough to pass an 8-qubit admission quota but deterministically
/// slow: a noisy per-prefix session replays every (breakpoint, shot)
/// pair, so the single worker stays busy long enough for the driver
/// thread to observe it `Running` and fill the queue behind it.
fn sleeper_program() -> Program {
    let mut p = Program::new();
    let q = p.alloc_register("q", 8);
    for round in 0..10 {
        for i in 0..8 {
            p.h(q.bit(i));
        }
        p.t(q.bit(round % 8));
        p.assert_superposition(&QReg::new("probe", vec![q.bit(0), q.bit(1)]));
    }
    p
}

fn sleeper_config() -> EnsembleConfig {
    fast_config()
        .with_shots(900)
        .with_seed(7)
        .with_noise(NoiseModel::depolarizing(0.02))
        .with_strategy(ExecutionStrategy::PerPrefix)
}

fn spin_until_running(server: &Server, id: qdb_server::SessionId) {
    for _ in 0..2000 {
        match server.state(id).expect("known session") {
            SessionState::Running => return,
            SessionState::Queued => std::thread::sleep(Duration::from_millis(1)),
            other => panic!("session reached {other} before running"),
        }
    }
    panic!("session never started running");
}

#[test]
fn completed_session_is_bit_identical_to_direct_run() {
    let server = Server::start(ServerConfig::default());
    let direct = EnsembleRunner::new(fast_config())
        .check_program(&staircase())
        .expect("direct run");

    let id = server.submit(staircase(), fast_config()).expect("admitted");
    let outcome = server.wait(id).expect("settled");
    assert_eq!(outcome.state, SessionState::Completed);
    assert!(outcome.bit_identical);
    assert_eq!(outcome.attempts, 1);
    assert_eq!(outcome.reports().expect("reports"), &direct[..]);
    assert!(matches!(outcome.events[0], SessionEvent::Admitted { .. }));
    assert!(matches!(
        outcome.events.last(),
        Some(SessionEvent::Completed { attempts: 1 })
    ));
    server.shutdown();
}

#[test]
fn concurrent_sessions_all_complete_identically() {
    let server = Server::start(ServerConfig::default().with_workers(4));
    let expected: Vec<_> = (0..3)
        .map(|i| {
            EnsembleRunner::new(fast_config().with_seed(100 + i))
                .check_program(&staircase())
                .expect("direct run")
        })
        .collect();
    let ids: Vec<_> = (0..12)
        .map(|i| {
            server
                .submit(staircase(), fast_config().with_seed(100 + (i % 3)))
                .expect("admitted")
        })
        .collect();
    for (i, id) in ids.into_iter().enumerate() {
        let outcome = server.wait(id).expect("settled");
        assert_eq!(outcome.state, SessionState::Completed, "session {i}");
        assert_eq!(
            outcome.reports().unwrap(),
            &expected[i % 3][..],
            "session {i}"
        );
    }
    let metrics = server.metrics();
    assert_eq!(metrics.submitted, 12);
    assert_eq!(metrics.completed, 12);
    server.shutdown();
}

#[test]
fn warm_resubmission_hits_plan_and_oracle_caches() {
    let server = Server::start(ServerConfig::default().with_workers(1));
    let first = server.submit(staircase(), fast_config()).expect("admitted");
    let cold = server.wait(first).expect("settled");
    let cold_metrics = server.metrics();
    assert!(cold_metrics.plan_cache_misses > 0, "cold run compiles");
    assert_eq!(cold_metrics.oracle_cache_hits, 0);

    let second = server.submit(staircase(), fast_config()).expect("admitted");
    let warm = server.wait(second).expect("settled");
    let warm_metrics = server.metrics();
    assert!(
        warm_metrics.plan_cache_hits > cold_metrics.plan_cache_hits,
        "warm resubmission must reuse compiled plans"
    );
    assert_eq!(
        warm_metrics.plan_cache_misses, cold_metrics.plan_cache_misses,
        "warm resubmission must not compile anything new"
    );
    assert!(
        warm_metrics.oracle_cache_hits > 0,
        "warm resubmission must skip the exact cross-check"
    );
    assert!(warm
        .events
        .iter()
        .any(|e| matches!(e, SessionEvent::OracleCacheHit)));
    // Splicing cached oracle verdicts must leave the reports — exact
    // fields included — bit-identical to the cold run's.
    assert_eq!(warm.reports().unwrap(), cold.reports().unwrap());
    assert!(
        warm.reports().unwrap().iter().all(|r| r.exact.is_some()),
        "spliced verdicts present"
    );
    server.shutdown();
}

#[test]
fn admission_control_rejects_and_applies_backpressure() {
    let server = Server::start(
        ServerConfig::default()
            .with_workers(1)
            .with_queue_capacity(3)
            .with_max_qubits(8)
            .with_max_shots(1000),
    );

    // Policy rejections are load-independent.
    assert!(matches!(
        server.submit(staircase(), fast_config().with_shots(0)),
        Err(ServerError::Rejected { .. })
    ));
    assert!(matches!(
        server.submit(staircase(), fast_config().with_shots(4096)),
        Err(ServerError::Rejected { .. })
    ));
    assert!(matches!(
        server.submit(heavy_program(), fast_config()), // 20 qubits > ceiling of 8
        Err(ServerError::Rejected { .. })
    ));

    // Backpressure: occupy the single worker, fill the queue, then
    // watch the next submission bounce.
    let sleeper = server
        .submit(sleeper_program(), sleeper_config())
        .expect("sleeper admitted");
    spin_until_running(&server, sleeper);
    let queued: Vec<_> = (0..3)
        .map(|i| {
            server
                .submit(staircase(), fast_config().with_seed(i))
                .expect("fits in queue")
        })
        .collect();
    match server.submit(staircase(), fast_config()) {
        Err(ServerError::QueueFull { capacity: 3 }) => {}
        other => panic!("expected QueueFull, got {other:?}"),
    }
    for id in queued.into_iter().chain([sleeper]) {
        assert_eq!(server.wait(id).unwrap().state, SessionState::Completed);
    }
    server.shutdown();
}

#[test]
fn cancel_is_typed_and_terminal() {
    let server = Server::start(ServerConfig::default().with_workers(1));
    // Cancel a running session: trips cooperatively.
    let running = server
        .submit(heavy_program(), fast_config().with_shots(512))
        .expect("admitted");
    spin_until_running(&server, running);
    server.cancel(running).expect("cancel running");
    let outcome = server.wait(running).expect("settled");
    assert_eq!(outcome.state, SessionState::Cancelled);
    assert!(outcome
        .events
        .iter()
        .any(|e| matches!(e, SessionEvent::Cancelled)));

    // Cancel a queued session: settles immediately, worker untouched.
    let blocker = server
        .submit(heavy_program(), fast_config().with_shots(256))
        .expect("admitted");
    spin_until_running(&server, blocker);
    let queued = server.submit(staircase(), fast_config()).expect("admitted");
    server.cancel(queued).expect("cancel queued");
    assert_eq!(server.wait(queued).unwrap().state, SessionState::Cancelled);
    server.cancel(blocker).expect("unblock");
    assert_eq!(server.wait(blocker).unwrap().state, SessionState::Cancelled);

    // Cancelled sessions cannot resume.
    assert!(matches!(
        server.resume(queued),
        Err(ServerError::NotEvicted { .. })
    ));
    assert!(server.metrics().cancelled >= 3);
    server.shutdown();
}

#[test]
fn evicted_session_resumes_bit_identically() {
    let config = fast_config().with_shots(256);
    let direct = EnsembleRunner::new(config.clone())
        .check_program(&heavy_program())
        .expect("direct run");

    let server = Server::start(ServerConfig::default().with_workers(1));
    let id = server.submit(heavy_program(), config).expect("admitted");
    spin_until_running(&server, id);
    server.evict(id).expect("evict running session");
    let parked = server.wait(id).expect("parked");
    assert_eq!(parked.state, SessionState::Evicted);
    assert!(parked
        .events
        .iter()
        .any(|e| matches!(e, SessionEvent::Evicted { .. })));
    assert_eq!(server.metrics().evicted, 1);

    server.resume(id).expect("resume parked session");
    let outcome = server.wait(id).expect("settled");
    assert_eq!(outcome.state, SessionState::Completed);
    assert!(outcome.bit_identical);
    assert_eq!(
        outcome.reports().expect("reports"),
        &direct[..],
        "evicted-then-resumed session must match the uninterrupted run bit for bit"
    );
    assert!(outcome
        .events
        .iter()
        .any(|e| matches!(e, SessionEvent::ResumeRequested { .. })));
    server.shutdown();
}

#[test]
fn eviction_of_queued_session_parks_with_empty_checkpoint() {
    let server = Server::start(ServerConfig::default().with_workers(1));
    let blocker = server
        .submit(heavy_program(), fast_config().with_shots(600))
        .expect("admitted");
    spin_until_running(&server, blocker);
    let queued = server.submit(staircase(), fast_config()).expect("admitted");
    server.evict(queued).expect("evict queued");
    let parked = server.wait(queued).expect("parked");
    assert_eq!(parked.state, SessionState::Evicted);
    assert_eq!(parked.completed, 0);
    server.cancel(blocker).expect("unblock");

    server.resume(queued).expect("resume");
    let outcome = server.wait(queued).expect("settled");
    assert_eq!(outcome.state, SessionState::Completed);
    assert!(outcome.bit_identical);
    server.shutdown();
}

#[test]
fn deadline_trips_retry_with_deterministic_backoff_then_fail_typed() {
    let retry = RetryPolicy {
        max_retries: 2,
        base_backoff: Duration::from_micros(100),
        max_backoff: Duration::from_millis(1),
        jitter_seed: 42,
    };
    let server = Server::start(
        ServerConfig::default()
            .with_workers(1)
            .with_retry(retry.clone()),
    );
    // A zero deadline trips at the first governor poll, every attempt.
    let config = fast_config().with_budget(RunBudget::default().with_deadline(Duration::ZERO));
    let id = server.submit(staircase(), config).expect("admitted");
    let outcome = server.wait(id).expect("settled");
    assert_eq!(outcome.state, SessionState::Failed);
    assert_eq!(outcome.attempts, 3, "first attempt + two retries");
    match outcome.error {
        Some(ServerError::RetriesExhausted { attempts: 3, .. }) => {}
        ref other => panic!("expected RetriesExhausted, got {other:?}"),
    }
    // The scheduled backoffs are the policy's deterministic values.
    let scheduled: Vec<Duration> = outcome
        .events
        .iter()
        .filter_map(|e| match e {
            SessionEvent::RetryScheduled { retry, backoff } => Some((*retry, *backoff)),
            _ => None,
        })
        .map(|(r, b)| {
            assert_eq!(
                b,
                retry.backoff_for(id.raw(), r),
                "backoff is deterministic"
            );
            b
        })
        .collect();
    assert_eq!(scheduled.len(), 2);
    assert_eq!(server.metrics().retries, 2);
    server.shutdown();
}

#[test]
fn memory_pressure_walks_degradation_ladder_to_sparse_and_completes() {
    // A 14-qubit non-Clifford program whose live support stays at one
    // basis state: the dense engine needs a 256 KiB statevector, the
    // sparse engine a handful of amplitudes. A memory policy between
    // the two forces the ladder to the sparse rung.
    let mut program = Program::new();
    let q = program.alloc_register("q", 14);
    program.prep_int(&q, 21);
    program.t(q.bit(0));
    let probe = QReg::new("probe", vec![q.bit(0), q.bit(1), q.bit(2)]);
    program.assert_classical(&probe, 5);

    let server = Server::start(
        ServerConfig::default()
            .with_workers(1)
            .with_session_max_resident_bytes(64 << 10),
    );
    let config = fast_config().with_backend(BackendChoice::Auto);
    let direct_verdicts: Vec<Verdict> = EnsembleRunner::new(config.clone())
        .check_program(&program)
        .expect("unconstrained direct run")
        .iter()
        .map(|r| r.verdict)
        .collect();

    let id = server.submit(program, config).expect("admitted");
    let outcome = server.wait(id).expect("settled");
    assert_eq!(
        outcome.state,
        SessionState::Completed,
        "events: {:?}",
        outcome.events
    );
    assert!(
        !outcome.bit_identical,
        "the sparse rung is bit-affecting and must be flagged"
    );
    assert!(outcome.events.iter().any(|e| matches!(
        e,
        SessionEvent::Degraded {
            action: DegradeAction::SparseFallback,
            bit_neutral: false
        }
    )));
    assert!(outcome.degradations() >= 1);
    assert!(server.metrics().degradations >= 1);
    // Bit-identity is forfeited, verdict equivalence is not.
    let verdicts: Vec<Verdict> = outcome
        .reports()
        .unwrap()
        .iter()
        .map(|r| r.verdict)
        .collect();
    assert_eq!(verdicts, direct_verdicts);
    server.shutdown();
}

#[test]
fn shutdown_is_graceful_and_idempotent() {
    let server = Server::start(ServerConfig::default().with_workers(1));
    let running = server.submit(staircase(), fast_config()).expect("admitted");
    server.shutdown();
    // In-flight work finished; nothing was abandoned untyped.
    let outcome = server.wait(running).expect("settled");
    assert!(outcome.state.is_terminal());
    // Admission is closed.
    assert!(matches!(
        server.submit(staircase(), fast_config()),
        Err(ServerError::ShuttingDown)
    ));
    server.shutdown(); // idempotent
}

#[test]
fn unknown_session_is_a_typed_error() {
    let server = Server::start(ServerConfig::default());
    let id = server.submit(staircase(), fast_config()).expect("admitted");
    server.wait(id).expect("settled");
    let bogus = qdb_server::SessionId::from_raw(999_999);
    assert!(matches!(
        server.wait(bogus),
        Err(ServerError::UnknownSession(_))
    ));
    assert!(matches!(
        server.state(bogus),
        Err(ServerError::UnknownSession(_))
    ));
    server.shutdown();
}
