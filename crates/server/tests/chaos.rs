//! Chaos/soak gate (`--features faultinject`): 32+ concurrent sessions
//! under randomized injected faults — allocation failures, worker
//! panics, deadline exhaustion — plus driver-side cancellations and
//! evictions, must all terminate in typed settled states with:
//!
//! * the process never aborting (every panic contained);
//! * zero leaked `StatePool` states on every trajectory-tree session
//!   (`states_outstanding == 0`);
//! * reports bit-identical to a fault-free run of the same submission
//!   for every completed session whose degradations (if any) were all
//!   bit-neutral;
//! * every evicted session resumable to a settled state, bit-identical
//!   where it completes.
//!
//! Proptest drives the fault mix; the fault plans themselves are
//! deterministic (site counters), so any failing case replays exactly.

#![cfg(feature = "faultinject")]

use std::collections::HashMap;

use proptest::prelude::*;
use qdb_circuit::{GateSink, Program, QReg};
use qdb_core::faultinject::{FaultKind, FaultPlan, FaultSite};
use qdb_core::{EnsembleConfig, EnsembleRunner};
use qdb_server::{Server, ServerConfig, ServerError, SessionEvent, SessionState};
use qdb_sim::NoiseModel;

/// Four decisive assertions; `clifford` keeps it tableau-compatible.
fn staircase(clifford: bool) -> Program {
    let mut p = Program::new();
    let a: QReg = p.alloc_register("a", 2);
    let b: QReg = p.alloc_register("b", 2);
    p.prep_int(&a, 3);
    p.assert_classical(&a, 3);
    p.h(b.bit(0));
    p.cx(b.bit(0), b.bit(1));
    let b0 = QReg::new("b0", vec![b.bit(0)]);
    let b1 = QReg::new("b1", vec![b.bit(1)]);
    p.assert_entangled(&b0, &b1);
    for i in 0..2 {
        p.h(a.bit(i));
    }
    if !clifford {
        p.t(a.bit(0));
        p.cz(a.bit(0), a.bit(1));
    }
    p.assert_superposition(&a);
    p.h(a.bit(0));
    p.assert_superposition(&b);
    p
}

/// The session shapes the storm mixes: noiseless dense, noisy
/// trajectory-tree, and Clifford programs.
fn flavor(which: usize, seed: u64) -> (Program, EnsembleConfig) {
    let base = EnsembleConfig::default().with_shots(24).with_seed(seed);
    match which % 3 {
        0 => (staircase(false), base),
        1 => (
            staircase(false),
            base.with_noise(NoiseModel::depolarizing(5e-3)),
        ),
        _ => (staircase(true), base),
    }
}

fn fault_plan(kind_ix: usize, site_ix: usize, n: u64) -> FaultPlan {
    let kind = [
        FaultKind::AllocationFailure,
        FaultKind::WorkerPanic,
        FaultKind::DeadlineExhaustion,
    ][kind_ix % 3];
    let site = if site_ix % 2 == 0 {
        FaultSite::Op
    } else {
        FaultSite::Fork
    };
    FaultPlan::new(kind, site, n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// The soak gate. Each case is one storm: `N` sessions submitted
    /// concurrently with randomized per-attempt fault plans, a few
    /// driver-side cancels and evicts sprinkled in, then a full
    /// settle-and-audit pass.
    #[test]
    fn storm_of_faulty_sessions_settles_typed_and_leak_free(
        session_params in proptest::collection::vec(
            (0usize..3, 0usize..3, 0usize..2, 1u64..60, 0usize..4),
            36..41,
        ),
        disturb_seed in 0u64..u64::MAX,
    ) {
        let server = Server::start(
            ServerConfig::default()
                .with_workers(4)
                .with_queue_capacity(256),
        );

        // Fault-free references, one per (flavor, seed) actually used.
        let mut references: HashMap<(usize, u64), Vec<qdb_core::AssertionReport>> = HashMap::new();

        let mut submitted = Vec::new();
        for (i, &(which, kind_ix, site_ix, n, nfaults)) in session_params.iter().enumerate() {
            let seed = 5000 + (i as u64 % 7);
            let (program, config) = flavor(which, seed);
            references.entry((which % 3, seed)).or_insert_with(|| {
                EnsembleRunner::new(config.clone())
                    .check_program(&program)
                    .expect("fault-free reference")
            });
            // 0–3 fault plans: attempt k+1 trips plan k; attempts past
            // the list run clean, so most sessions eventually complete.
            let faults: Vec<FaultPlan> = (0..nfaults)
                .map(|k| fault_plan(kind_ix + k, site_ix + k, n + k as u64 * 3))
                .collect();
            let id = server
                .submit_with_faults(program, config, faults)
                .expect("storm submission admitted");
            submitted.push((id, which % 3, seed));
        }

        // Driver-side disturbance: deterministically pick a few victims
        // to cancel or evict while the storm runs.
        let mut evicted = Vec::new();
        for (slot, &(id, _, _)) in submitted.iter().enumerate() {
            let h = disturb_seed
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(slot as u64);
            match h % 11 {
                0 => server.cancel(id).expect("cancel victim"),
                1 => {
                    server.evict(id).expect("evict victim");
                    evicted.push(id);
                }
                _ => {}
            }
        }

        // Settle everything; resume whatever parked (evictions race
        // with completion, so parking is best-effort).
        for &(id, _, _) in &submitted {
            let outcome = server.wait(id).expect("settled");
            if outcome.state == SessionState::Evicted {
                server.resume(id).expect("resume evicted session");
            }
        }

        // Audit.
        for &(id, flavor_ix, seed) in &submitted {
            let outcome = server.wait(id).expect("settled after resume");
            prop_assert!(
                outcome.state.is_terminal(),
                "{id}: left in non-terminal {:?}; events: {:?}",
                outcome.state,
                outcome.events
            );
            match outcome.state {
                SessionState::Completed => {
                    let reports = outcome.reports().expect("completed has reports");
                    if let Some(stats) = &outcome.stats {
                        prop_assert_eq!(
                            stats.states_outstanding, 0,
                            "{}: leaked pool states", id
                        );
                    }
                    if outcome.bit_identical {
                        prop_assert_eq!(
                            reports,
                            &references[&(flavor_ix, seed)][..],
                            "{}: completed reports diverged from the fault-free run \
                             (attempts {}, events {:?})",
                            id, outcome.attempts, outcome.events
                        );
                    }
                }
                SessionState::Failed => {
                    // Typed, classified failure — panics map to
                    // Panicked, exhausted transients to
                    // RetriesExhausted. Nothing opaque.
                    match outcome.error {
                        Some(ServerError::Panicked { .. })
                        | Some(ServerError::RetriesExhausted { .. })
                        | Some(ServerError::Session(_)) => {}
                        ref other => prop_assert!(false, "{}: untyped failure {:?}", id, other),
                    }
                }
                SessionState::Cancelled => {
                    prop_assert!(
                        outcome
                            .events
                            .iter()
                            .any(|e| matches!(e, SessionEvent::Cancelled)),
                        "{}: cancelled without a log entry", id
                    );
                }
                other => prop_assert!(false, "{id}: unexpected settled state {other:?}"),
            }
        }

        // The worker pool survived every contained panic: a fresh
        // submission still completes.
        let (program, config) = flavor(0, 12345);
        let probe = server.submit(program, config).expect("pool still alive");
        let outcome = server.wait(probe).expect("probe settles");
        prop_assert_eq!(outcome.state, SessionState::Completed);

        server.shutdown();
    }
}

/// Deterministic (non-proptest) spine of the gate: every fault kind at
/// a reachable site, one session each, plus an evict-resume round trip
/// under injected faults — bit-identity asserted directly.
#[test]
fn each_fault_kind_settles_typed_and_resumes_bit_identically() {
    let server = Server::start(ServerConfig::default().with_workers(2));
    let (program, config) = flavor(1, 777); // noisy tree: the richest failure surface
    let reference = EnsembleRunner::new(config.clone())
        .check_program(&program)
        .expect("fault-free reference");

    // Worker panic → typed terminal failure, pool survives.
    let id = server
        .submit_with_faults(
            program.clone(),
            config.clone(),
            vec![FaultPlan::new(FaultKind::WorkerPanic, FaultSite::Op, 3)],
        )
        .expect("admitted");
    let outcome = server.wait(id).expect("settled");
    assert_eq!(outcome.state, SessionState::Failed);
    assert!(matches!(outcome.error, Some(ServerError::Panicked { .. })));

    // Allocation failure then deadline exhaustion → two retries, then a
    // clean attempt completes bit-identically from the checkpoint.
    let id = server
        .submit_with_faults(
            program.clone(),
            config.clone(),
            // Low op-poll sites: every attempt with work left performs
            // op polls, so both faults are guaranteed to fire (fork
            // sites are scarce in serial mode, and op polls are
            // batched, so high indices may never be reached).
            vec![
                FaultPlan::new(FaultKind::AllocationFailure, FaultSite::Op, 2),
                FaultPlan::new(FaultKind::DeadlineExhaustion, FaultSite::Op, 1),
            ],
        )
        .expect("admitted");
    let outcome = server.wait(id).expect("settled");
    assert_eq!(
        outcome.state,
        SessionState::Completed,
        "events: {:?}",
        outcome.events
    );
    assert_eq!(outcome.attempts, 3);
    if outcome.bit_identical {
        assert_eq!(outcome.reports().unwrap(), &reference[..]);
    }
    if let Some(stats) = &outcome.stats {
        assert_eq!(stats.states_outstanding, 0);
    }
    assert!(server.metrics().retries >= 2);
    server.shutdown();
}
