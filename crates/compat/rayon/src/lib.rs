//! Offline stand-in for `rayon` (API subset).
//!
//! The build environment is hermetic, so this crate supplies the
//! parallel-iterator surface `qdb-core` uses: `into_par_iter()` /
//! `par_iter()` over ranges and slices, `map`, `for_each`, and
//! `collect` into `Vec<T>` or `Result<Vec<T>, E>`.
//!
//! Work is divided into contiguous index blocks executed on
//! `std::thread::scope` threads — no work stealing, which is fine for
//! the embarrassingly parallel, uniform-cost loops this workspace has.
//! `RAYON_NUM_THREADS` is honored (re-read on every call, so tests can
//! toggle it at runtime). Results are always assembled in input order,
//! so any `collect` is deterministic regardless of thread count.

#![warn(missing_docs)]

use std::ops::Range;

/// Number of worker threads: `RAYON_NUM_THREADS` if set and positive,
/// else the number of available CPUs.
#[must_use]
pub fn current_num_threads() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, usize::from)
}

/// A random-access description of a parallel computation: `len` items,
/// item `i` computed independently by `item(i)`.
pub trait IndexedTask: Sync {
    /// The per-item output type.
    type Output: Send;

    /// Total number of items.
    fn len(&self) -> usize;

    /// `true` when there are no items.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Compute item `i`. May be called concurrently from many threads.
    fn item(&self, i: usize) -> Self::Output;
}

/// Evaluate every item of `task`, in parallel, preserving input order.
fn drive<T: IndexedTask>(task: &T) -> Vec<T::Output> {
    let n = task.len();
    let threads = current_num_threads().min(n);
    if threads <= 1 {
        return (0..n).map(|i| task.item(i)).collect();
    }
    let mut out: Vec<Option<T::Output>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    let chunk = n.div_ceil(threads);
    std::thread::scope(|scope| {
        for (t, slots) in out.chunks_mut(chunk).enumerate() {
            scope.spawn(move || {
                let base = t * chunk;
                for (j, slot) in slots.iter_mut().enumerate() {
                    *slot = Some(task.item(base + j));
                }
            });
        }
    });
    out.into_iter()
        .map(|slot| slot.expect("all slots filled by scope"))
        .collect()
}

/// Run two closures, potentially on two threads, and return both
/// results — rayon's `join`, minus work stealing.
///
/// With one worker (or `RAYON_NUM_THREADS=1`) both closures run on the
/// calling thread, `a` first; otherwise `b` runs on a scoped thread
/// while the caller runs `a`. Results are returned in argument order
/// either way, and a panic in either closure propagates to the caller.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        let ra = a();
        let rb = b();
        return (ra, rb);
    }
    std::thread::scope(|scope| {
        let handle = scope.spawn(b);
        let ra = a();
        let rb = handle
            .join()
            .unwrap_or_else(|payload| std::panic::resume_unwind(payload));
        (ra, rb)
    })
}

/// Partition `0..len` into at most [`current_num_threads`] contiguous
/// chunks and run `body` once per chunk (concurrently when more than
/// one worker is available), returning the number of chunks dispatched.
///
/// This is the disjoint-slice dispatch surface the amplitude-parallel
/// kernels chunk their run space over: every index appears in exactly
/// one chunk, chunks are maximal contiguous ranges in ascending order,
/// and the chunk *boundaries* are the only thing that varies with the
/// worker count — callers whose per-index work is self-contained are
/// therefore bit-identical across thread counts by construction. An
/// empty `len` dispatches nothing and returns 0; a panicking chunk
/// propagates to the caller after the scope joins.
pub fn dispatch_chunks<F: Fn(Range<usize>) + Sync>(len: usize, body: F) -> usize {
    let threads = current_num_threads().min(len);
    if threads <= 1 {
        if len > 0 {
            body(0..len);
        }
        return usize::from(len > 0);
    }
    let chunk = len.div_ceil(threads);
    let chunks = len.div_ceil(chunk);
    std::thread::scope(|scope| {
        for c in 0..chunks {
            let body = &body;
            scope.spawn(move || {
                let start = c * chunk;
                body(start..(start + chunk).min(len));
            });
        }
    });
    chunks
}

/// The subset of rayon's `ParallelIterator` used by this workspace.
pub trait ParallelIterator: IndexedTask + Sized {
    /// Apply `f` to every item in parallel.
    fn map<U: Send, F: Fn(Self::Output) -> U + Sync>(self, f: F) -> Map<Self, F> {
        Map { base: self, f }
    }

    /// Run `f` on every item in parallel (for side effects).
    fn for_each<F: Fn(Self::Output) + Sync>(self, f: F) {
        drive(&self.map(f));
    }

    /// Evaluate everything and collect, preserving input order.
    fn collect<C: FromParallelIterator<Self::Output>>(self) -> C {
        C::from_ordered(drive(&self))
    }

    /// Sum the items.
    fn sum<S: std::iter::Sum<Self::Output>>(self) -> S {
        drive(&self).into_iter().sum()
    }
}

impl<T: IndexedTask + Sized> ParallelIterator for T {}

/// `map` adapter.
pub struct Map<B, F> {
    base: B,
    f: F,
}

impl<B: IndexedTask, U: Send, F: Fn(B::Output) -> U + Sync> IndexedTask for Map<B, F> {
    type Output = U;

    fn len(&self) -> usize {
        self.base.len()
    }

    fn item(&self, i: usize) -> U {
        (self.f)(self.base.item(i))
    }
}

/// Parallel iterator over a `usize` range.
pub struct RangeIter {
    range: Range<usize>,
}

impl IndexedTask for RangeIter {
    type Output = usize;

    fn len(&self) -> usize {
        self.range.end.saturating_sub(self.range.start)
    }

    fn item(&self, i: usize) -> usize {
        self.range.start + i
    }
}

/// Parallel iterator over shared slice elements.
pub struct SliceIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> IndexedTask for SliceIter<'a, T> {
    type Output = &'a T;

    fn len(&self) -> usize {
        self.slice.len()
    }

    fn item(&self, i: usize) -> &'a T {
        &self.slice[i]
    }
}

/// Conversion into a parallel iterator (rayon's entry point).
pub trait IntoParallelIterator {
    /// The resulting iterator type.
    type Iter: ParallelIterator<Output = Self::Item>;
    /// The element type.
    type Item: Send;

    /// Convert `self`.
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for Range<usize> {
    type Iter = RangeIter;
    type Item = usize;

    fn into_par_iter(self) -> RangeIter {
        RangeIter { range: self }
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a [T] {
    type Iter = SliceIter<'a, T>;
    type Item = &'a T;

    fn into_par_iter(self) -> SliceIter<'a, T> {
        SliceIter { slice: self }
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a Vec<T> {
    type Iter = SliceIter<'a, T>;
    type Item = &'a T;

    fn into_par_iter(self) -> SliceIter<'a, T> {
        SliceIter { slice: self }
    }
}

/// `par_iter()` on references, mirroring `rayon::iter::IntoParallelRefIterator`.
pub trait IntoParallelRefIterator<'a> {
    /// The resulting iterator type.
    type Iter: ParallelIterator<Output = Self::Item>;
    /// The element type.
    type Item: Send;

    /// Parallel iterator over `&self`'s elements.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, C: ?Sized + 'a> IntoParallelRefIterator<'a> for C
where
    &'a C: IntoParallelIterator,
{
    type Iter = <&'a C as IntoParallelIterator>::Iter;
    type Item = <&'a C as IntoParallelIterator>::Item;

    fn par_iter(&'a self) -> Self::Iter {
        self.into_par_iter()
    }
}

/// Collection targets for [`ParallelIterator::collect`].
pub trait FromParallelIterator<T> {
    /// Build the collection from items already in input order.
    fn from_ordered(items: Vec<T>) -> Self;
}

impl<T> FromParallelIterator<T> for Vec<T> {
    fn from_ordered(items: Vec<T>) -> Self {
        items
    }
}

impl<T, E> FromParallelIterator<Result<T, E>> for Result<Vec<T>, E> {
    fn from_ordered(items: Vec<Result<T, E>>) -> Self {
        items.into_iter().collect()
    }
}

/// Commonly imported items, mirroring `rayon::prelude`.
pub mod prelude {
    pub use super::{
        FromParallelIterator, IntoParallelIterator, IntoParallelRefIterator, ParallelIterator,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn range_map_collect_preserves_order() {
        let squares: Vec<usize> = (0..1000).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares.len(), 1000);
        assert!(squares.iter().enumerate().all(|(i, &s)| s == i * i));
    }

    #[test]
    fn slice_par_iter_reads_all_elements() {
        let data: Vec<u64> = (0..257).collect();
        let doubled: Vec<u64> = data.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..257).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn collect_into_result_short_circuits_value() {
        let ok: Result<Vec<usize>, String> = (0..10).into_par_iter().map(Ok).collect();
        assert_eq!(ok.unwrap().len(), 10);
        let err: Result<Vec<usize>, String> = (0..10)
            .into_par_iter()
            .map(|i| {
                if i == 7 {
                    Err("boom".to_string())
                } else {
                    Ok(i)
                }
            })
            .collect();
        assert_eq!(err.unwrap_err(), "boom");
    }

    #[test]
    fn empty_range_is_fine() {
        let out: Vec<usize> = (5..5).into_par_iter().map(|i| i + 1).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn join_returns_both_results_in_order() {
        let xs: Vec<u32> = (0..64).collect();
        let (evens, odds) = super::join(
            || xs.iter().filter(|x| *x % 2 == 0).sum::<u32>(),
            || xs.iter().filter(|x| *x % 2 == 1).sum::<u32>(),
        );
        assert_eq!(evens + odds, xs.iter().sum::<u32>());
        assert_eq!(evens, (0..64).step_by(2).sum::<u32>());
        // Serial path (threads == 1) must agree with the threaded path.
        std::env::set_var("RAYON_NUM_THREADS", "1");
        let serial = super::join(|| 2 + 2, || "b");
        std::env::remove_var("RAYON_NUM_THREADS");
        assert_eq!(serial, (4, "b"));
    }

    #[test]
    fn dispatch_chunks_covers_every_index_exactly_once() {
        use std::sync::Mutex;
        for threads in ["1", "2", "4", "7"] {
            std::env::set_var("RAYON_NUM_THREADS", threads);
            let hits = Mutex::new(vec![0u32; 1000]);
            let chunks = super::dispatch_chunks(1000, |range| {
                let mut hits = hits.lock().unwrap();
                for i in range {
                    hits[i] += 1;
                }
            });
            std::env::remove_var("RAYON_NUM_THREADS");
            let hits = hits.into_inner().unwrap();
            assert!(hits.iter().all(|&h| h == 1), "threads={threads}");
            assert!(chunks >= 1 && chunks <= threads.parse::<usize>().unwrap());
        }
    }

    #[test]
    fn dispatch_chunks_handles_empty_and_tiny_lengths() {
        let chunks = super::dispatch_chunks(0, |_| panic!("no chunks expected"));
        assert_eq!(chunks, 0);
        let chunks = super::dispatch_chunks(1, |range| assert_eq!(range, 0..1));
        assert_eq!(chunks, 1);
    }

    #[test]
    fn thread_count_env_var_is_honored() {
        // Serial fallback path (threads == 1) must agree with parallel.
        std::env::set_var("RAYON_NUM_THREADS", "1");
        let serial: Vec<usize> = (0..100).into_par_iter().map(|i| i + 1).collect();
        std::env::remove_var("RAYON_NUM_THREADS");
        let parallel: Vec<usize> = (0..100).into_par_iter().map(|i| i + 1).collect();
        assert_eq!(serial, parallel);
        assert!(super::current_num_threads() >= 1);
    }
}
