//! Offline stand-in for the `criterion` crate (API subset).
//!
//! The build environment is hermetic, so this crate supplies the
//! benchmarking surface the `qdb-bench` benches use: `Criterion`,
//! benchmark groups, `BenchmarkId`, `Throughput`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is deliberately simple: calibrate an iteration count to
//! a target window, take `sample_size` timed samples, and report the
//! median with min/max spread. Two execution modes, matching how cargo
//! invokes `harness = false` bench targets:
//!
//! * `cargo bench` passes `--bench` → full measurement;
//! * `cargo test` passes nothing → each benchmark runs once as a smoke
//!   test, so benches stay compile- and run-verified in tier-1 CI.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Measurement configuration plus the chosen execution mode.
pub struct Criterion {
    /// Run each routine exactly once (smoke mode) instead of sampling.
    quick: bool,
    /// Timed samples per benchmark in full mode.
    sample_size: usize,
    /// Optional substring filter from the command line.
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let quick = !args.iter().any(|a| a == "--bench");
        let filter = args
            .iter()
            .filter(|a| !a.starts_with("--"))
            .map(String::to_owned)
            .next();
        Self {
            quick,
            sample_size: 10,
            filter,
        }
    }
}

impl Criterion {
    /// Benchmark a single routine under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(self, id, f);
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Record the per-iteration workload (reported but not used to
    /// normalize timings in this stand-in).
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    /// Benchmark `f` with `input`, labelled by `id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        let sample_size = self.sample_size;
        run_scoped(self.criterion, sample_size, &label, |b| f(b, input));
        self
    }

    /// Benchmark a routine, labelled by `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into().label);
        let sample_size = self.sample_size;
        run_scoped(self.criterion, sample_size, &label, f);
        self
    }

    /// Finish the group (no-op; provided for API compatibility).
    pub fn finish(self) {}
}

/// A benchmark label, optionally parameterized.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            label: format!("{}/{parameter}", name.into()),
        }
    }

    /// Just the parameter as the label.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        Self {
            label: label.to_owned(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        Self { label }
    }
}

/// Per-iteration workload descriptor (reported only).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Passed to each benchmark closure to time the routine.
pub struct Bencher {
    quick: bool,
    sample_size: usize,
    /// Filled in by [`Bencher::iter`]; consumed by the reporter.
    result: Option<Samples>,
}

struct Samples {
    iters_per_sample: u64,
    durations: Vec<Duration>,
}

impl Bencher {
    /// Time `routine`, auto-calibrating the iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.quick {
            std::hint::black_box(routine());
            return;
        }
        // Calibrate: grow the batch until it takes ≥ ~5 ms.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(5) || iters >= 1 << 24 {
                break;
            }
            iters = if elapsed < Duration::from_micros(50) {
                iters * 16
            } else {
                iters * 2
            };
        }
        let durations = (0..self.sample_size)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..iters {
                    std::hint::black_box(routine());
                }
                start.elapsed()
            })
            .collect();
        self.result = Some(Samples {
            iters_per_sample: iters,
            durations,
        });
    }
}

fn run_one<F: FnMut(&mut Bencher)>(criterion: &mut Criterion, label: &str, f: F) {
    let sample_size = criterion.sample_size;
    run_scoped(criterion, Some(sample_size), label, f);
}

fn run_scoped<F: FnMut(&mut Bencher)>(
    criterion: &Criterion,
    sample_size: Option<usize>,
    label: &str,
    mut f: F,
) {
    if let Some(filter) = &criterion.filter {
        if !label.contains(filter.as_str()) {
            return;
        }
    }
    let mut bencher = Bencher {
        quick: criterion.quick,
        sample_size: sample_size.unwrap_or(criterion.sample_size),
        result: None,
    };
    f(&mut bencher);
    if bencher.quick {
        println!("{label:<50} ok (smoke)");
        return;
    }
    let Some(samples) = bencher.result else {
        println!("{label:<50} no measurement (routine never called iter)");
        return;
    };
    let mut per_iter: Vec<f64> = samples
        .durations
        .iter()
        .map(|d| d.as_secs_f64() / samples.iters_per_sample as f64)
        .collect();
    per_iter.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let median = per_iter[per_iter.len() / 2];
    let min = per_iter[0];
    let max = per_iter[per_iter.len() - 1];
    println!(
        "{label:<50} time: [{} {} {}]",
        format_time(min),
        format_time(median),
        format_time(max),
    );
}

fn format_time(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:.2} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:.2} µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2} ms", seconds * 1e3)
    } else {
        format!("{seconds:.2} s")
    }
}

/// Group benchmark functions under one callable, mirroring criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given groups, mirroring criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_criterion() -> Criterion {
        Criterion {
            quick: true,
            sample_size: 10,
            filter: None,
        }
    }

    #[test]
    fn quick_mode_runs_routine_once() {
        let mut criterion = smoke_criterion();
        let mut calls = 0u32;
        criterion.bench_function("counting", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 1);
    }

    #[test]
    fn groups_run_all_benchmarks() {
        let mut criterion = smoke_criterion();
        let mut calls = 0u32;
        {
            let mut group = criterion.benchmark_group("g");
            group.sample_size(10);
            group.throughput(Throughput::Elements(4));
            group.bench_with_input(BenchmarkId::from_parameter(3), &3, |b, &n| {
                b.iter(|| calls += n)
            });
            group.bench_function("plain", |b| b.iter(|| calls += 1));
            group.finish();
        }
        assert_eq!(calls, 4);
    }

    #[test]
    fn measured_mode_collects_samples() {
        let mut criterion = Criterion {
            quick: false,
            sample_size: 3,
            filter: None,
        };
        let mut calls = 0u64;
        criterion.bench_function("spin", |b| b.iter(|| calls = calls.wrapping_add(1)));
        assert!(calls > 3, "calibration + samples must iterate: {calls}");
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut criterion = Criterion {
            quick: true,
            sample_size: 10,
            filter: Some("match_me".into()),
        };
        let mut calls = 0u32;
        criterion.bench_function("other", |b| b.iter(|| calls += 1));
        criterion.bench_function("match_me_exactly", |b| b.iter(|| calls += 10));
        assert_eq!(calls, 10);
    }

    #[test]
    fn benchmark_id_labels() {
        assert_eq!(BenchmarkId::new("draw", 16).label, "draw/16");
        assert_eq!(BenchmarkId::from_parameter(8).label, "8");
        assert_eq!(format_time(2.5e-9), "2.50 ns");
        assert_eq!(format_time(2.5e-3), "2.50 ms");
    }
}
