//! Offline stand-in for the `criterion` crate (API subset).
//!
//! The build environment is hermetic, so this crate supplies the
//! benchmarking surface the `qdb-bench` benches use: `Criterion`,
//! benchmark groups, `BenchmarkId`, `Throughput`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is deliberately simple: calibrate an iteration count to
//! a target window, take `sample_size` timed samples, and report the
//! median with min/max spread. Two execution modes, matching how cargo
//! invokes `harness = false` bench targets:
//!
//! * `cargo bench` passes `--bench` → full measurement;
//! * `cargo test` passes nothing → each benchmark runs once as a smoke
//!   test, so benches stay compile- and run-verified in tier-1 CI.
//!
//! Measured runs additionally record every benchmark into a
//! machine-readable results file (see [`write_results_to`]): wall-clock
//! stats per bench plus any work counters attached via
//! [`record_metric`]. `criterion_main!` writes
//! `BENCH_results.json` at the *workspace root* (override with the
//! `BENCH_RESULTS_PATH` environment variable) after all groups finish,
//! merging by `(target, bench)` key so repeated `cargo bench` runs of
//! different bench targets accumulate into one file — the perf
//! trajectory across PRs lives in version control. Smoke runs have no
//! timings, but their work counters still land in the file as entries
//! flagged `"mode":"smoke"`; measured data is always authoritative — a
//! smoke refresh never replaces a measured entry with the same key,
//! while a later measured run replaces a smoke placeholder.

#![warn(missing_docs)]

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One measured benchmark, queued for [`write_results_to`].
struct ResultEntry {
    bench: String,
    median_s: f64,
    min_s: f64,
    max_s: f64,
    iters_per_sample: u64,
    throughput_elements: Option<u64>,
}

static RESULTS: Mutex<Vec<ResultEntry>> = Mutex::new(Vec::new());
static METRICS: Mutex<Vec<(String, String, f64)>> = Mutex::new(Vec::new());

/// Measurement configuration plus the chosen execution mode.
pub struct Criterion {
    /// Run each routine exactly once (smoke mode) instead of sampling.
    quick: bool,
    /// Timed samples per benchmark in full mode.
    sample_size: usize,
    /// Optional substring filter from the command line.
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let quick = !args.iter().any(|a| a == "--bench");
        let filter = args
            .iter()
            .filter(|a| !a.starts_with("--"))
            .map(String::to_owned)
            .next();
        Self {
            quick,
            sample_size: 10,
            filter,
        }
    }
}

impl Criterion {
    /// Benchmark a single routine under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(self, id, f);
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Record the per-iteration workload for subsequent benchmarks in
    /// this group (attached to the results file; not used to normalize
    /// timings in this stand-in).
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmark `f` with `input`, labelled by `id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        let sample_size = self.sample_size;
        let throughput = self.throughput;
        run_scoped(self.criterion, sample_size, throughput, &label, |b| {
            f(b, input)
        });
        self
    }

    /// Benchmark a routine, labelled by `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into().label);
        let sample_size = self.sample_size;
        let throughput = self.throughput;
        run_scoped(self.criterion, sample_size, throughput, &label, f);
        self
    }

    /// Finish the group (no-op; provided for API compatibility).
    pub fn finish(self) {}
}

/// A benchmark label, optionally parameterized.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            label: format!("{}/{parameter}", name.into()),
        }
    }

    /// Just the parameter as the label.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        Self {
            label: label.to_owned(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        Self { label }
    }
}

/// Per-iteration workload descriptor (reported only).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Passed to each benchmark closure to time the routine.
pub struct Bencher {
    quick: bool,
    sample_size: usize,
    /// Filled in by [`Bencher::iter`]; consumed by the reporter.
    result: Option<Samples>,
}

struct Samples {
    iters_per_sample: u64,
    durations: Vec<Duration>,
}

impl Bencher {
    /// Time `routine`, auto-calibrating the iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.quick {
            std::hint::black_box(routine());
            return;
        }
        // Calibrate: grow the batch until it takes ≥ ~5 ms.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(5) || iters >= 1 << 24 {
                break;
            }
            iters = if elapsed < Duration::from_micros(50) {
                iters * 16
            } else {
                iters * 2
            };
        }
        let durations = (0..self.sample_size)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..iters {
                    std::hint::black_box(routine());
                }
                start.elapsed()
            })
            .collect();
        self.result = Some(Samples {
            iters_per_sample: iters,
            durations,
        });
    }
}

fn run_one<F: FnMut(&mut Bencher)>(criterion: &mut Criterion, label: &str, f: F) {
    let sample_size = criterion.sample_size;
    run_scoped(criterion, Some(sample_size), None, label, f);
}

fn run_scoped<F: FnMut(&mut Bencher)>(
    criterion: &Criterion,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
    label: &str,
    mut f: F,
) {
    if let Some(filter) = &criterion.filter {
        if !label.contains(filter.as_str()) {
            return;
        }
    }
    let mut bencher = Bencher {
        quick: criterion.quick,
        sample_size: sample_size.unwrap_or(criterion.sample_size),
        result: None,
    };
    f(&mut bencher);
    if bencher.quick {
        println!("{label:<50} ok (smoke)");
        return;
    }
    let Some(samples) = bencher.result else {
        println!("{label:<50} no measurement (routine never called iter)");
        return;
    };
    let mut per_iter: Vec<f64> = samples
        .durations
        .iter()
        .map(|d| d.as_secs_f64() / samples.iters_per_sample as f64)
        .collect();
    per_iter.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let median = per_iter[per_iter.len() / 2];
    let min = per_iter[0];
    let max = per_iter[per_iter.len() - 1];
    println!(
        "{label:<50} time: [{} {} {}]",
        format_time(min),
        format_time(median),
        format_time(max),
    );
    RESULTS.lock().expect("results lock").push(ResultEntry {
        bench: label.to_owned(),
        median_s: median,
        min_s: min,
        max_s: max,
        iters_per_sample: samples.iters_per_sample,
        throughput_elements: throughput.map(|t| match t {
            Throughput::Elements(n) | Throughput::Bytes(n) => n,
        }),
    });
}

/// Attach a named work counter (gate counts, index-work totals, speedup
/// ratios, …) to the benchmark labelled `bench` in the results file.
///
/// Call from bench code next to the cross-checks that compute the
/// counter; the value rides along with that bench's wall-clock entry on
/// the next [`write_results_to`]. Metrics recorded for labels that
/// never measure (e.g. in smoke mode) are written as timing-free
/// entries flagged `"mode":"smoke"` — unless a measured entry with the
/// same key already exists, which always wins.
pub fn record_metric(bench: &str, name: &str, value: f64) {
    METRICS
        .lock()
        .expect("metrics lock")
        .push((bench.to_owned(), name.to_owned(), value));
}

/// Minimal JSON string escaping for bench labels and metric names.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render one results line. The whole-file format keeps exactly one
/// entry per line so [`write_results_to`] can merge files it wrote
/// earlier without a JSON parser.
fn render_entry(target: &str, entry: &ResultEntry, metrics: &[(String, String, f64)]) -> String {
    let mut line = format!(
        "    {{\"target\":\"{}\",\"bench\":\"{}\",\"median_s\":{:e},\"min_s\":{:e},\"max_s\":{:e},\"iters_per_sample\":{}",
        json_escape(target),
        json_escape(&entry.bench),
        entry.median_s,
        entry.min_s,
        entry.max_s,
        entry.iters_per_sample,
    );
    if let Some(elements) = entry.throughput_elements {
        line.push_str(&format!(",\"throughput\":{elements}"));
    }
    let attached: Vec<&(String, String, f64)> = metrics
        .iter()
        .filter(|(b, _, _)| *b == entry.bench)
        .collect();
    if !attached.is_empty() {
        line.push_str(",\"metrics\":{");
        for (i, (_, name, value)) in attached.iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            line.push_str(&format!("\"{}\":{:e}", json_escape(name), value));
        }
        line.push('}');
    }
    line.push('}');
    line
}

/// Render a timing-free smoke entry: just the key, the mode flag, and
/// the work counters recorded for `bench` during the smoke run.
fn render_smoke_entry(target: &str, bench: &str, metrics: &[(String, String, f64)]) -> String {
    let mut line = format!(
        "    {{\"target\":\"{}\",\"bench\":\"{}\",\"mode\":\"smoke\",\"metrics\":{{",
        json_escape(target),
        json_escape(bench),
    );
    let attached: Vec<&(String, String, f64)> =
        metrics.iter().filter(|(b, _, _)| b == bench).collect();
    for (i, (_, name, value)) in attached.iter().enumerate() {
        if i > 0 {
            line.push(',');
        }
        line.push_str(&format!("\"{}\":{:e}", json_escape(name), value));
    }
    line.push_str("}}");
    line
}

/// Extract the `(target, bench)` key from a previously-rendered entry
/// line, for merge-by-key.
fn entry_key(line: &str) -> Option<(String, String)> {
    Some((
        extract_json_string_after(line, "\"target\":\"")?,
        extract_json_string_after(line, "\"bench\":\"")?,
    ))
}

/// Return the *still-escaped* JSON string value following `marker`,
/// honoring backslash escapes so an escaped `\"` inside the value does
/// not terminate it. Keys stay in escaped form on both sides of the
/// merge comparison (see `merge_and_render`), so rendering
/// deterministically is all that matters.
fn extract_json_string_after(line: &str, marker: &str) -> Option<String> {
    let rest = line.split(marker).nth(1)?;
    let mut out = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '\\' => {
                out.push('\\');
                out.push(chars.next()?);
            }
            '"' => return Some(out),
            c => out.push(c),
        }
    }
    None
}

/// Merge this run's entries into the (possibly absent) previous file
/// contents and render the whole results document: entries from other
/// bench targets (and other benches of this target) are preserved;
/// entries re-measured in this run replace their previous versions.
///
/// A run with no timings but recorded work counters (smoke mode) emits
/// `"mode":"smoke"` placeholder entries instead. Measured data is
/// authoritative: a smoke entry replaces only a previous *smoke* entry
/// with the same key and is suppressed entirely when a measured entry
/// with that key already exists, while a measured entry replaces
/// anything — smoke or measured — sharing its key.
fn merge_and_render(
    existing: Option<&str>,
    target: &str,
    results: &[ResultEntry],
    metrics: &[(String, String, f64)],
) -> String {
    let smoke_run = results.is_empty();
    // The distinct bench labels this run contributes, in first-seen
    // order: from timings when measured, from work counters when smoke.
    let mut fresh_benches: Vec<String> = Vec::new();
    if smoke_run {
        for (bench, _, _) in metrics {
            if !fresh_benches.contains(bench) {
                fresh_benches.push(bench.clone());
            }
        }
    } else {
        fresh_benches.extend(results.iter().map(|e| e.bench.clone()));
    }
    // Keys are compared in *escaped* form: `entry_key` reads them back
    // from rendered (escaped) lines, so the fresh side escapes too —
    // otherwise any label containing `"` or `\` would never match its
    // previous entry and would duplicate on every run.
    let fresh_keys: Vec<(String, String)> = fresh_benches
        .iter()
        .map(|bench| (json_escape(target), json_escape(bench)))
        .collect();
    let mut measured_keys: Vec<(String, String)> = Vec::new();
    let mut lines: Vec<String> = Vec::new();
    for line in existing.unwrap_or_default().lines() {
        let trimmed = line.trim().trim_end_matches(',');
        if trimmed.starts_with("{\"target\":") {
            if let Some(key) = entry_key(trimmed) {
                let measured_line = !trimmed.contains("\"mode\":\"smoke\"");
                if !fresh_keys.contains(&key) || (smoke_run && measured_line) {
                    lines.push(format!("    {trimmed}"));
                    if measured_line {
                        measured_keys.push(key);
                    }
                }
            }
        }
    }
    if smoke_run {
        for (bench, key) in fresh_benches.iter().zip(&fresh_keys) {
            if !measured_keys.contains(key) {
                lines.push(render_smoke_entry(target, bench, metrics));
            }
        }
    } else {
        for entry in results {
            lines.push(render_entry(target, entry, metrics));
        }
    }
    let mut out = String::from("{\n  \"schema\": \"qdb-bench-results/v1\",\n  \"results\": [\n");
    out.push_str(&lines.join(",\n"));
    out.push_str("\n  ]\n}\n");
    out
}

/// Write every benchmark measured by this process to `path` as JSON,
/// merged with whatever a previous run left there (see
/// [`record_metric`] for attaching work counters). `target` names the
/// bench binary. Smoke runs (no timings) still write their work
/// counters as `"mode":"smoke"` entries, but never displace measured
/// data; a run with neither timings nor counters is a no-op.
pub fn write_results_to(path: &str, target: &str) {
    let results = RESULTS.lock().expect("results lock");
    let metrics = METRICS.lock().expect("metrics lock");
    if results.is_empty() && metrics.is_empty() {
        return;
    }
    let existing = std::fs::read_to_string(path).ok();
    let out = merge_and_render(existing.as_deref(), target, &results, &metrics);
    if let Err(e) = std::fs::write(path, out) {
        eprintln!("warning: could not write bench results to {path}: {e}");
    }
}

/// The directory the default results file lives in: the *workspace
/// root* — the nearest ancestor of `manifest_dir` (inclusive) holding a
/// `Cargo.lock` — falling back to `manifest_dir` itself outside any
/// workspace. Keeping the file at the root means cross-PR tooling that
/// globs `BENCH_*.json` there sees the tracked perf trajectory without
/// knowing which crate benches live in.
fn results_dir(manifest_dir: &str) -> std::path::PathBuf {
    let start = std::path::Path::new(manifest_dir);
    start
        .ancestors()
        .find(|dir| dir.join("Cargo.lock").is_file())
        .unwrap_or(start)
        .to_path_buf()
}

/// Resolve the results path (`BENCH_RESULTS_PATH` env override, else
/// `BENCH_results.json` in the workspace root — the nearest ancestor of
/// `manifest_dir` holding a `Cargo.lock`) and the bench-target name
/// (binary file stem minus cargo's trailing `-<hash>`), then write.
/// Called by [`criterion_main!`]; separated for testability.
pub fn write_default_results(manifest_dir: &str) {
    let path = std::env::var("BENCH_RESULTS_PATH").unwrap_or_else(|_| {
        results_dir(manifest_dir)
            .join("BENCH_results.json")
            .to_string_lossy()
            .into_owned()
    });
    let target = std::env::args()
        .next()
        .and_then(|argv0| {
            std::path::Path::new(&argv0)
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
        })
        .map(|stem| match stem.rsplit_once('-') {
            Some((name, hash))
                if hash.len() == 16 && hash.chars().all(|c| c.is_ascii_hexdigit()) =>
            {
                name.to_owned()
            }
            _ => stem,
        })
        .unwrap_or_else(|| "unknown".to_owned());
    write_results_to(&path, &target);
}

fn format_time(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:.2} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:.2} µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2} ms", seconds * 1e3)
    } else {
        format!("{seconds:.2} s")
    }
}

/// Group benchmark functions under one callable, mirroring criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given groups, mirroring criterion; after all
/// groups finish, measured results are written to the bench crate's
/// `BENCH_results.json` (see [`write_default_results`]).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::write_default_results(env!("CARGO_MANIFEST_DIR"));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_criterion() -> Criterion {
        Criterion {
            quick: true,
            sample_size: 10,
            filter: None,
        }
    }

    #[test]
    fn quick_mode_runs_routine_once() {
        let mut criterion = smoke_criterion();
        let mut calls = 0u32;
        criterion.bench_function("counting", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 1);
    }

    #[test]
    fn groups_run_all_benchmarks() {
        let mut criterion = smoke_criterion();
        let mut calls = 0u32;
        {
            let mut group = criterion.benchmark_group("g");
            group.sample_size(10);
            group.throughput(Throughput::Elements(4));
            group.bench_with_input(BenchmarkId::from_parameter(3), &3, |b, &n| {
                b.iter(|| calls += n)
            });
            group.bench_function("plain", |b| b.iter(|| calls += 1));
            group.finish();
        }
        assert_eq!(calls, 4);
    }

    #[test]
    fn measured_mode_collects_samples() {
        let mut criterion = Criterion {
            quick: false,
            sample_size: 3,
            filter: None,
        };
        let mut calls = 0u64;
        criterion.bench_function("spin", |b| b.iter(|| calls = calls.wrapping_add(1)));
        assert!(calls > 3, "calibration + samples must iterate: {calls}");
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut criterion = Criterion {
            quick: true,
            sample_size: 10,
            filter: Some("match_me".into()),
        };
        let mut calls = 0u32;
        criterion.bench_function("other", |b| b.iter(|| calls += 1));
        criterion.bench_function("match_me_exactly", |b| b.iter(|| calls += 10));
        assert_eq!(calls, 10);
    }

    #[test]
    fn benchmark_id_labels() {
        assert_eq!(BenchmarkId::new("draw", 16).label, "draw/16");
        assert_eq!(BenchmarkId::from_parameter(8).label, "8");
        assert_eq!(format_time(2.5e-9), "2.50 ns");
        assert_eq!(format_time(2.5e-3), "2.50 ms");
    }

    fn entry(bench: &str, median: f64) -> ResultEntry {
        ResultEntry {
            bench: bench.to_owned(),
            median_s: median,
            min_s: median / 2.0,
            max_s: median * 2.0,
            iters_per_sample: 8,
            throughput_elements: Some(400),
        }
    }

    #[test]
    fn results_render_entries_with_metrics() {
        let metrics = vec![
            ("g/compiled".to_owned(), "index_ops".to_owned(), 1024.0),
            ("g/other".to_owned(), "unrelated".to_owned(), 1.0),
        ];
        let doc = merge_and_render(None, "gate_kernels", &[entry("g/compiled", 1e-3)], &metrics);
        assert!(doc.contains("\"schema\": \"qdb-bench-results/v1\""));
        assert!(doc.contains("\"target\":\"gate_kernels\""));
        assert!(doc.contains("\"bench\":\"g/compiled\""));
        assert!(doc.contains("\"throughput\":400"));
        assert!(doc.contains("\"metrics\":{\"index_ops\":1.024e3}"));
        assert!(!doc.contains("unrelated"), "metric for other bench leaked");
    }

    #[test]
    fn results_merge_replaces_same_key_and_keeps_others() {
        let first = merge_and_render(
            None,
            "alpha",
            &[entry("a/1", 1e-3), entry("a/2", 2e-3)],
            &[],
        );
        // A later run of a different target keeps alpha's entries.
        let second = merge_and_render(Some(&first), "beta", &[entry("b/1", 5e-4)], &[]);
        assert!(second.contains("\"bench\":\"a/1\""));
        assert!(second.contains("\"bench\":\"a/2\""));
        assert!(second.contains("\"bench\":\"b/1\""));
        // Re-measuring one alpha bench replaces only that entry.
        let third = merge_and_render(Some(&second), "alpha", &[entry("a/1", 9e-3)], &[]);
        assert!(third.contains("\"median_s\":9e-3"));
        assert!(!third.contains("\"median_s\":1e-3"));
        assert!(third.contains("\"bench\":\"a/2\""));
        assert!(third.contains("\"bench\":\"b/1\""));
        // Stable under a no-change rewrite.
        let fourth = merge_and_render(Some(&third), "alpha", &[entry("a/1", 9e-3)], &[]);
        assert_eq!(
            third.matches("\"bench\"").count(),
            fourth.matches("\"bench\"").count()
        );
    }

    #[test]
    fn entry_key_and_escaping() {
        // Keys round-trip in escaped form, honoring embedded escapes.
        let awkward = "odd \"label\"\\";
        let rendered = render_entry("t", &entry(awkward, 1e-6), &[]);
        assert_eq!(
            entry_key(&rendered),
            Some(("t".to_owned(), json_escape(awkward)))
        );
        let clean = render_entry("t", &entry("g/plain", 1e-6), &[]);
        assert_eq!(
            entry_key(&clean),
            Some(("t".to_owned(), "g/plain".to_owned()))
        );
        assert_eq!(json_escape("a\"b\\c\n"), "a\\\"b\\\\c\\u000a");
    }

    #[test]
    fn merge_replaces_entries_with_escaped_labels() {
        // A label containing quotes/backslashes must still merge by
        // key instead of duplicating on every re-measure.
        let awkward = "odd \"label\"\\";
        let first = merge_and_render(None, "alpha", &[entry(awkward, 1e-3)], &[]);
        let second = merge_and_render(Some(&first), "alpha", &[entry(awkward, 2e-3)], &[]);
        assert_eq!(second.matches("\"bench\"").count(), 1);
        assert!(second.contains("\"median_s\":2e-3"));
        assert!(!second.contains("\"median_s\":1e-3"));
    }

    #[test]
    fn smoke_metrics_render_flagged_entries() {
        let metrics = vec![
            ("s/a".to_owned(), "ops".to_owned(), 128.0),
            ("s/a".to_owned(), "peak_support".to_owned(), 32.0),
            ("s/b".to_owned(), "ops".to_owned(), 64.0),
        ];
        // A smoke run: no timed results, only work counters.
        let doc = merge_and_render(None, "sparse_scale", &[], &metrics);
        assert_eq!(doc.matches("\"mode\":\"smoke\"").count(), 2);
        assert!(doc.contains("\"bench\":\"s/a\",\"mode\":\"smoke\""));
        assert!(doc.contains("\"metrics\":{\"ops\":1.28e2,\"peak_support\":3.2e1}"));
        assert!(doc.contains("\"bench\":\"s/b\",\"mode\":\"smoke\""));
        assert!(!doc.contains("median_s"), "smoke entries carry no timings");
    }

    #[test]
    fn measured_entries_survive_smoke_refreshes() {
        let metrics = vec![("s/a".to_owned(), "ops".to_owned(), 128.0)];
        let measured = merge_and_render(None, "sparse_scale", &[entry("s/a", 1e-3)], &metrics);
        // A later smoke run of the same bench must not displace the
        // measured entry — and must not add a duplicate smoke one.
        let after_smoke = merge_and_render(Some(&measured), "sparse_scale", &[], &metrics);
        assert!(after_smoke.contains("\"median_s\":1e-3"));
        assert!(!after_smoke.contains("\"mode\":\"smoke\""));
        assert_eq!(after_smoke.matches("\"bench\":\"s/a\"").count(), 1);
    }

    #[test]
    fn smoke_replaces_smoke_and_measured_replaces_smoke() {
        let metrics_v1 = vec![("s/a".to_owned(), "ops".to_owned(), 128.0)];
        let metrics_v2 = vec![("s/a".to_owned(), "ops".to_owned(), 256.0)];
        let first = merge_and_render(None, "sparse_scale", &[], &metrics_v1);
        // Smoke refreshes smoke in place.
        let second = merge_and_render(Some(&first), "sparse_scale", &[], &metrics_v2);
        assert_eq!(second.matches("\"bench\":\"s/a\"").count(), 1);
        assert!(second.contains("\"ops\":2.56e2"));
        assert!(!second.contains("\"ops\":1.28e2"));
        // A measured run upgrades the smoke placeholder.
        let third = merge_and_render(
            Some(&second),
            "sparse_scale",
            &[entry("s/a", 1e-3)],
            &metrics_v1,
        );
        assert_eq!(third.matches("\"bench\":\"s/a\"").count(), 1);
        assert!(third.contains("\"median_s\":1e-3"));
        assert!(!third.contains("\"mode\":\"smoke\""));
        // Entries from other targets are untouched throughout.
        let other = merge_and_render(Some(&third), "other_target", &[], &metrics_v1);
        assert!(other.contains("\"median_s\":1e-3"));
        assert!(other.contains("\"target\":\"other_target\",\"bench\":\"s/a\",\"mode\":\"smoke\""));
    }

    #[test]
    fn smoke_mode_records_nothing() {
        let mut criterion = smoke_criterion();
        criterion.bench_function("results_smoke_probe", |b| b.iter(|| 1 + 1));
        let results = RESULTS.lock().expect("results lock");
        assert!(
            !results.iter().any(|e| e.bench == "results_smoke_probe"),
            "smoke runs must not enqueue results"
        );
    }

    #[test]
    fn results_dir_walks_up_to_the_workspace_root() {
        // This crate sits at <root>/crates/compat/criterion; the
        // workspace root (with Cargo.lock) is three levels up, and the
        // default results file lands there.
        let manifest_dir = env!("CARGO_MANIFEST_DIR");
        let dir = results_dir(manifest_dir);
        assert!(dir.join("Cargo.lock").is_file());
        assert_ne!(dir, std::path::Path::new(manifest_dir));
        assert!(std::path::Path::new(manifest_dir).starts_with(&dir));
    }
}
