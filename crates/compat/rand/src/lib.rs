//! Offline stand-in for the `rand` crate (0.8-series API subset).
//!
//! The build environment for this workspace is hermetic — no crates-io
//! access — so this crate provides the exact `rand` surface the
//! workspace uses: the [`Rng`]/[`RngCore`]/[`SeedableRng`] traits and a
//! deterministic [`rngs::StdRng`]. The generator is xoshiro256++
//! (Blackman & Vigna) seeded through SplitMix64, which passes BigCrush
//! and is more than adequate for the Monte-Carlo sampling done here.
//! It is *not* a cryptographic generator, and its stream differs from
//! crates-io `StdRng` (ChaCha12) — all seeds in this workspace were
//! chosen against this generator.

#![warn(missing_docs)]

/// The core of a random number generator: a source of `u32`/`u64` words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator seedable from a `u64` (the only seeding mode this
/// workspace uses).
pub trait SeedableRng: Sized {
    /// Create a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible by [`Rng::gen`] from a uniform random stream.
pub trait Standard: Sized {
    /// Draw one uniformly distributed value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random bits into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Integer types usable as [`Rng::gen_range`] bounds.
pub trait UniformSampled: Copy + PartialOrd {
    /// Uniform draw from `[low, high)`; `high > low` is the caller's
    /// responsibility (checked by [`Rng::gen_range`]).
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformSampled for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                let span = (high as i128 - low as i128) as u128;
                // Multiply-shift rejection (Lemire): unbiased without
                // division in the common case.
                let zone = u128::from(u64::MAX) + 1;
                let threshold = zone % span;
                loop {
                    let word = u128::from(rng.next_u64());
                    if word * span % zone >= threshold {
                        return (low as i128 + (word * span / zone) as i128) as $t;
                    }
                }
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl UniformSampled for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        low + f64::sample_standard(rng) * (high - low)
    }
}

impl UniformSampled for f32 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        low + f32::sample_standard(rng) * (high - low)
    }
}

/// Range types accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: UniformSampled> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_range(rng, self.start, self.end)
    }
}

/// User-facing random value generation, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// A uniformly distributed value of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// A uniform draw from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic generator: xoshiro256++ seeded via SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 stream expands the seed into the full state, as
            // recommended by the xoshiro reference implementation.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Commonly imported items, mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let av: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let bv: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(av, bv);
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn gen_range_hits_all_values_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 3];
        for _ in 0..1000 {
            let v = rng.gen_range(0..3);
            assert!((0..3).contains(&v));
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_range_respects_nonzero_lower_bound() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..1000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(11);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn works_through_mut_ref_and_unsized() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen()
        }
        let mut rng = StdRng::seed_from_u64(9);
        let x = draw(&mut rng);
        assert!((0.0..1.0).contains(&x));
    }
}
