//! Offline stand-in for the `proptest` crate (API subset).
//!
//! The build environment is hermetic, so this crate reimplements the
//! slice of proptest this workspace uses: the [`proptest!`] macro,
//! range/tuple/`Just`/`prop_oneof!`/collection/option strategies with
//! `prop_map` / `prop_filter` / `prop_filter_map`, and the
//! `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **No shrinking** — a failing case reports its inputs (and the
//!   deterministic per-test seed) but is not minimized.
//! * **Deterministic seeding** — case seeds derive from the test's full
//!   module path, so runs are reproducible without a persistence file.

#![warn(missing_docs)]

/// Value-generation strategies, mirroring `proptest::strategy`.
pub mod strategy {
    use rand::rngs::StdRng;
    use rand::{Rng, UniformSampled};
    use std::ops::Range;

    /// A generator of random values of type `Value`.
    ///
    /// Unlike real proptest there is no value tree: `generate` draws a
    /// fresh value and failing cases are not shrunk.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { base: self, f }
        }

        /// Keep only values satisfying `f`, retrying otherwise.
        fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                base: self,
                whence,
                f,
            }
        }

        /// Map-and-filter in one step, retrying on `None`.
        fn prop_filter_map<O, F>(self, whence: &'static str, f: F) -> FilterMap<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> Option<O>,
        {
            FilterMap {
                base: self,
                whence,
                f,
            }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    impl<T: UniformSampled> Strategy for Range<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            rng.gen_range(self.clone())
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.base.generate(rng))
        }
    }

    /// How many consecutive rejections a filter tolerates before giving
    /// up on the whole test (mirrors proptest's global rejection cap).
    const MAX_FILTER_RETRIES: usize = 4096;

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        base: S,
        whence: &'static str,
        f: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;

        fn generate(&self, rng: &mut StdRng) -> S::Value {
            for _ in 0..MAX_FILTER_RETRIES {
                let value = self.base.generate(rng);
                if (self.f)(&value) {
                    return value;
                }
            }
            panic!(
                "prop_filter({:?}): rejected {} consecutive candidates",
                self.whence, MAX_FILTER_RETRIES
            );
        }
    }

    /// See [`Strategy::prop_filter_map`].
    pub struct FilterMap<S, F> {
        base: S,
        whence: &'static str,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> Option<O>> Strategy for FilterMap<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut StdRng) -> O {
            for _ in 0..MAX_FILTER_RETRIES {
                if let Some(value) = (self.f)(self.base.generate(rng)) {
                    return value;
                }
            }
            panic!(
                "prop_filter_map({:?}): rejected {} consecutive candidates",
                self.whence, MAX_FILTER_RETRIES
            );
        }
    }

    /// Uniform choice between boxed alternatives (see [`prop_oneof!`]).
    ///
    /// [`prop_oneof!`]: crate::prop_oneof
    pub struct Union<T> {
        arms: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            let idx = rng.gen_range(0..self.arms.len());
            self.arms[idx].generate(rng)
        }
    }

    /// Build a [`Union`]; used by the [`prop_oneof!`] macro expansion.
    ///
    /// # Panics
    ///
    /// Panics when `arms` is empty.
    ///
    /// [`prop_oneof!`]: crate::prop_oneof
    #[must_use]
    pub fn union<T>(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// An inclusive-exclusive size window for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            Self {
                lo: exact,
                hi: exact + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec`: vectors of `element` values.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// `Option` strategies, mirroring `proptest::option`.
pub mod option {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Strategy for `Option<S::Value>`.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `proptest::option::of`: `None` a quarter of the time, like
    /// proptest's default `Some` weight of 3:1.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Option<S::Value> {
            if rng.gen_range(0..4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// Test-case driving machinery, mirroring `proptest::test_runner`.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Per-test configuration (only the knobs this workspace touches).
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Number of successful cases required before the test passes.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` successful cases.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    /// Why a single test case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` was not satisfied; draw another case.
        Reject(String),
        /// A `prop_assert*!` failed; the whole test fails.
        Fail(String),
    }

    impl TestCaseError {
        /// A failing case.
        pub fn fail(msg: impl Into<String>) -> Self {
            Self::Fail(msg.into())
        }

        /// A rejected (assume-violating) case.
        pub fn reject(msg: impl Into<String>) -> Self {
            Self::Reject(msg.into())
        }
    }

    /// Drives the generate → run → classify loop for one `proptest!`
    /// test function.
    pub struct TestRunner {
        config: ProptestConfig,
        base_seed: u64,
        passed: u32,
        drawn: u64,
        rejected: u32,
    }

    impl TestRunner {
        /// A runner whose case seeds derive deterministically from
        /// `name` (use the test's full module path).
        #[must_use]
        pub fn new(config: ProptestConfig, name: &str) -> Self {
            // FNV-1a over the test name: stable across runs and builds.
            let mut hash = 0xcbf2_9ce4_8422_2325u64;
            for byte in name.bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
            Self {
                config,
                base_seed: hash,
                passed: 0,
                drawn: 0,
                rejected: 0,
            }
        }

        /// `true` while more successful cases are still needed.
        #[must_use]
        pub fn more_cases(&self) -> bool {
            self.passed < self.config.cases
        }

        /// The RNG for the next case (deterministic per test + case).
        pub fn case_rng(&mut self) -> StdRng {
            let seed = self
                .base_seed
                .wrapping_add(self.drawn.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            self.drawn += 1;
            StdRng::seed_from_u64(seed)
        }

        /// Record a passing case.
        pub fn pass(&mut self) {
            self.passed += 1;
        }

        /// Record a rejected case (`prop_assume!`).
        ///
        /// # Panics
        ///
        /// Panics when the rejection budget (16× the case count, plus
        /// slack) is exhausted, mirroring proptest's global cap.
        pub fn reject(&mut self, reason: &str) {
            self.rejected += 1;
            assert!(
                self.rejected <= self.config.cases.saturating_mul(16).saturating_add(1024),
                "too many prop_assume! rejections (last: {reason})"
            );
        }
    }
}

/// The glob-importable prelude, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Qualified access to the rest of the API (`prop::collection::vec`
    /// and friends), mirroring `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::{collection, option, strategy};
    }
}

/// Define property tests. Each case draws fresh inputs from the given
/// strategies; see [`test_runner::ProptestConfig`] for the case count.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
          $(#[$meta:meta])*
          fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut runner = $crate::test_runner::TestRunner::new(
                    config,
                    concat!(module_path!(), "::", stringify!($name)),
                );
                while runner.more_cases() {
                    let mut case_rng = runner.case_rng();
                    $(
                        let $arg = $crate::strategy::Strategy::generate(
                            &($strat),
                            &mut case_rng,
                        );
                    )+
                    let inputs = format!(
                        concat!($(stringify!($arg), " = {:?}; "),+),
                        $(&$arg),+
                    );
                    #[allow(clippy::redundant_closure_call)]
                    let outcome = (|| -> ::core::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    match outcome {
                        ::core::result::Result::Ok(()) => runner.pass(),
                        ::core::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject(reason),
                        ) => runner.reject(&reason),
                        ::core::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(message),
                        ) => panic!(
                            "proptest case failed: {message}\n  inputs: {inputs}"
                        ),
                    }
                }
            }
        )*
    };
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs == *rhs,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            lhs,
            rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(*lhs == *rhs, $($fmt)+);
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs != *rhs,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            lhs
        );
    }};
}

/// Discard the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assume failed: ", stringify!($cond)),
            ));
        }
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::union(vec![
            $(::std::boxed::Box::new($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn union_draws_every_arm() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let s = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut rng = StdRng::seed_from_u64(0);
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3] && !seen[0]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 3..17u64, y in -2.5f64..2.5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.5..2.5).contains(&y));
        }

        #[test]
        fn vec_strategy_respects_size(v in prop::collection::vec(0..10u64, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn filters_and_assume_work(
            pair in (0..5usize, 0..5usize).prop_filter_map("distinct", |(a, b)| {
                (a != b).then_some((a, b))
            }),
            opt in prop::option::of(0..3u32),
        ) {
            prop_assume!(opt.is_none() || opt < Some(3));
            prop_assert_ne!(pair.0, pair.1);
            let doubled = (0..2u8).prop_map(|x| x * 2);
            let _ = &doubled;
            prop_assert!(true);
        }

        #[test]
        fn maps_compose(v in prop::collection::vec((0..4usize).prop_map(|x| x * 3), 1..4)) {
            prop_assert!(v.iter().all(|&x| x % 3 == 0 && x < 12));
            prop_assert_eq!(v.len().min(3), v.len());
        }
    }
}
