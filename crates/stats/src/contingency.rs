//! Contingency-table analysis for entanglement and product-state assertions.
//!
//! The paper (§4.4–4.5) checks whether two quantum variables are entangled
//! by building a contingency table from paired measurement outcomes and
//! running a chi-square test of independence:
//!
//! * small p-value → outcomes are correlated → the variables were
//!   **entangled** when measured (`assert_entangled` passes);
//! * large p-value → outcomes look independent → consistent with a
//!   **product state** (`assert_product` passes).
//!
//! For 2×2 tables we apply Yates' continuity correction by default; this is
//! what reproduces the paper's `p = 0.0005` for the 16-shot Bell table
//! (χ²_Yates = 12.25, p ≈ 4.7 × 10⁻⁴) rather than the uncorrected
//! χ² = 16, p ≈ 6.3 × 10⁻⁵.

use std::collections::BTreeMap;
use std::fmt;

use crate::chi2::{chi2_sf, ChiSquareResult};
use crate::StatsError;

/// How (and whether) to apply Yates' continuity correction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum YatesCorrection {
    /// Apply the correction only to 2×2 tables (the textbook default and
    /// what matches the paper's reported p-values).
    #[default]
    Auto,
    /// Never apply the correction.
    Never,
    /// Apply the correction to every cell regardless of table shape.
    Always,
}

/// Result of a chi-square independence test on a contingency table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ContingencyResult {
    /// The (possibly Yates-corrected) χ² statistic.
    pub statistic: f64,
    /// Degrees of freedom, `(rows − 1)(cols − 1)` after dropping empty
    /// rows/columns.
    pub dof: usize,
    /// Right-tail p-value. Small values indicate *dependence* (and hence
    /// entanglement).
    pub p_value: f64,
    /// Cramér's V, a normalized effect size in `[0, 1]`.
    pub cramers_v: f64,
    /// Pearson's contingency coefficient `C = sqrt(χ² / (χ² + N))`.
    pub contingency_coefficient: f64,
    /// Whether Yates' correction was applied.
    pub yates_applied: bool,
}

impl ContingencyResult {
    /// `true` when the independence hypothesis is rejected at `alpha`,
    /// i.e. the measured variables are correlated/entangled.
    #[must_use]
    pub fn dependent(&self, alpha: f64) -> bool {
        self.p_value <= alpha
    }
}

/// A two-dimensional table of outcome counts built from paired observations.
///
/// Row labels come from the first element of each pair and column labels
/// from the second; labels are arbitrary `u64` outcomes (e.g. the integer
/// value a quantum register collapsed to).
///
/// ```
/// use qdb_stats::ContingencyTable;
///
/// // Perfectly anti-correlated single qubits.
/// let pairs = (0..20).map(|i| (i % 2, 1 - i % 2));
/// let table = ContingencyTable::from_pairs(pairs);
/// assert_eq!(table.total(), 20);
/// assert!(table.independence_test()?.dependent(0.05));
/// # Ok::<(), qdb_stats::StatsError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ContingencyTable {
    row_labels: Vec<u64>,
    col_labels: Vec<u64>,
    /// Dense row-major counts, `counts[r][c]`.
    counts: Vec<Vec<u64>>,
}

impl ContingencyTable {
    /// Build a table from paired outcomes.
    pub fn from_pairs<I: IntoIterator<Item = (u64, u64)>>(pairs: I) -> Self {
        let mut map: BTreeMap<(u64, u64), u64> = BTreeMap::new();
        for pair in pairs {
            *map.entry(pair).or_insert(0) += 1;
        }
        let mut row_labels: Vec<u64> = map.keys().map(|&(r, _)| r).collect();
        row_labels.dedup();
        row_labels.sort_unstable();
        row_labels.dedup();
        let mut col_labels: Vec<u64> = map.keys().map(|&(_, c)| c).collect();
        col_labels.sort_unstable();
        col_labels.dedup();
        let mut counts = vec![vec![0u64; col_labels.len()]; row_labels.len()];
        for ((r, c), n) in map {
            let ri = row_labels.binary_search(&r).expect("label present");
            let ci = col_labels.binary_search(&c).expect("label present");
            counts[ri][ci] = n;
        }
        Self {
            row_labels,
            col_labels,
            counts,
        }
    }

    /// Build directly from a dense count matrix with implicit labels
    /// `0..rows` and `0..cols`.
    ///
    /// # Errors
    ///
    /// [`StatsError::DegenerateTable`] if rows have inconsistent lengths or
    /// the matrix is empty.
    pub fn from_counts(counts: Vec<Vec<u64>>) -> Result<Self, StatsError> {
        if counts.is_empty() || counts[0].is_empty() {
            return Err(StatsError::DegenerateTable);
        }
        let cols = counts[0].len();
        if counts.iter().any(|row| row.len() != cols) {
            return Err(StatsError::DegenerateTable);
        }
        Ok(Self {
            row_labels: (0..counts.len() as u64).collect(),
            col_labels: (0..cols as u64).collect(),
            counts,
        })
    }

    /// Total number of observations in the table.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.counts.iter().flatten().sum()
    }

    /// Distinct row outcome labels, sorted.
    #[must_use]
    pub fn row_labels(&self) -> &[u64] {
        &self.row_labels
    }

    /// Distinct column outcome labels, sorted.
    #[must_use]
    pub fn col_labels(&self) -> &[u64] {
        &self.col_labels
    }

    /// Count in the cell for `(row_label, col_label)`, or 0 if absent.
    #[must_use]
    pub fn count(&self, row_label: u64, col_label: u64) -> u64 {
        let Ok(ri) = self.row_labels.binary_search(&row_label) else {
            return 0;
        };
        let Ok(ci) = self.col_labels.binary_search(&col_label) else {
            return 0;
        };
        self.counts[ri][ci]
    }

    /// Row marginal totals (one per row label).
    #[must_use]
    pub fn row_totals(&self) -> Vec<u64> {
        self.counts.iter().map(|r| r.iter().sum()).collect()
    }

    /// Column marginal totals (one per column label).
    #[must_use]
    pub fn col_totals(&self) -> Vec<u64> {
        let cols = self.col_labels.len();
        let mut totals = vec![0u64; cols];
        for row in &self.counts {
            for (c, &n) in row.iter().enumerate() {
                totals[c] += n;
            }
        }
        totals
    }

    /// Chi-square test of independence with the default
    /// [`YatesCorrection::Auto`] policy.
    ///
    /// # Errors
    ///
    /// See [`ContingencyTable::independence_test_with`].
    pub fn independence_test(&self) -> Result<ContingencyResult, StatsError> {
        self.independence_test_with(YatesCorrection::default())
    }

    /// Chi-square test of independence with an explicit correction policy.
    ///
    /// Empty rows/columns are dropped before computing degrees of freedom
    /// (they carry no information about dependence).
    ///
    /// # Errors
    ///
    /// * [`StatsError::EmptySample`] when the table holds no observations;
    /// * [`StatsError::DegenerateTable`] when fewer than two nonempty rows
    ///   or columns remain — independence is untestable. Callers treating
    ///   this as an assertion should interpret a degenerate table as *not
    ///   entangled* (a constant variable cannot exhibit correlation).
    pub fn independence_test_with(
        &self,
        yates: YatesCorrection,
    ) -> Result<ContingencyResult, StatsError> {
        let n = self.total();
        if n == 0 {
            return Err(StatsError::EmptySample);
        }
        let row_totals = self.row_totals();
        let col_totals = self.col_totals();
        let live_rows: Vec<usize> = (0..self.counts.len())
            .filter(|&r| row_totals[r] > 0)
            .collect();
        let live_cols: Vec<usize> = (0..self.col_labels.len())
            .filter(|&c| col_totals[c] > 0)
            .collect();
        if live_rows.len() < 2 || live_cols.len() < 2 {
            return Err(StatsError::DegenerateTable);
        }

        let apply_yates = match yates {
            YatesCorrection::Auto => live_rows.len() == 2 && live_cols.len() == 2,
            YatesCorrection::Never => false,
            YatesCorrection::Always => true,
        };

        let n_f = n as f64;
        let mut statistic = 0.0;
        for &r in &live_rows {
            for &c in &live_cols {
                let expected = row_totals[r] as f64 * col_totals[c] as f64 / n_f;
                let observed = self.counts[r][c] as f64;
                let mut d = (observed - expected).abs();
                if apply_yates {
                    d = (d - 0.5).max(0.0);
                }
                statistic += d * d / expected;
            }
        }
        let dof = (live_rows.len() - 1) * (live_cols.len() - 1);
        let p_value = chi2_sf(statistic, dof)?;
        let min_dim = (live_rows.len().min(live_cols.len()) - 1) as f64;
        let cramers_v = if statistic <= 0.0 {
            0.0
        } else {
            (statistic / (n_f * min_dim)).sqrt().min(1.0)
        };
        let contingency_coefficient = (statistic / (statistic + n_f)).sqrt();
        Ok(ContingencyResult {
            statistic,
            dof,
            p_value,
            cramers_v,
            contingency_coefficient,
            yates_applied: apply_yates,
        })
    }

    /// Convenience wrapper exposing the same shape as a plain chi-square
    /// result, for callers that do not need effect sizes.
    ///
    /// # Errors
    ///
    /// See [`ContingencyTable::independence_test_with`].
    pub fn chi_square(&self) -> Result<ChiSquareResult, StatsError> {
        let r = self.independence_test()?;
        Ok(ChiSquareResult {
            statistic: r.statistic,
            dof: r.dof,
            p_value: r.p_value,
        })
    }
}

impl fmt::Display for ContingencyTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:>10}", "")?;
        for c in &self.col_labels {
            write!(f, "{c:>10}")?;
        }
        writeln!(f)?;
        for (r, row) in self.counts.iter().enumerate() {
            write!(f, "{:>10}", self.row_labels[r])?;
            for &n in row {
                write!(f, "{n:>10}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Bell-state table from Figure 1: 16 shots, 8 on each diagonal.
    fn bell_table() -> ContingencyTable {
        ContingencyTable::from_counts(vec![vec![8, 0], vec![0, 8]]).unwrap()
    }

    #[test]
    fn bell_table_yates_matches_paper() {
        // Yates-corrected: χ² = 4 × 3.5²/4 = 12.25, p ≈ 4.7e-4 — the value
        // the paper rounds to 0.0005.
        let r = bell_table().independence_test().unwrap();
        assert!(r.yates_applied);
        assert!((r.statistic - 12.25).abs() < 1e-12);
        assert!((r.p_value - 4.66e-4).abs() < 5e-6, "p = {}", r.p_value);
        assert!(r.dependent(0.05));
    }

    #[test]
    fn bell_table_uncorrected() {
        let r = bell_table()
            .independence_test_with(YatesCorrection::Never)
            .unwrap();
        assert!(!r.yates_applied);
        assert!((r.statistic - 16.0).abs() < 1e-12);
        assert!((r.p_value - 6.33e-5).abs() < 1e-6);
        assert!((r.cramers_v - 1.0).abs() < 1e-12);
    }

    #[test]
    fn independent_table_passes() {
        // Product state: counts proportional to the product of marginals.
        let t = ContingencyTable::from_counts(vec![vec![25, 25], vec![25, 25]]).unwrap();
        let r = t.independence_test().unwrap();
        assert!(r.statistic.abs() < 1e-12);
        assert!(r.p_value > 0.999);
        assert!(!r.dependent(0.05));
        assert_eq!(r.cramers_v, 0.0);
    }

    #[test]
    fn from_pairs_builds_sorted_dense_table() {
        let t = ContingencyTable::from_pairs([(3, 1), (3, 1), (7, 0), (3, 0)]);
        assert_eq!(t.row_labels(), &[3, 7]);
        assert_eq!(t.col_labels(), &[0, 1]);
        assert_eq!(t.count(3, 1), 2);
        assert_eq!(t.count(3, 0), 1);
        assert_eq!(t.count(7, 0), 1);
        assert_eq!(t.count(7, 1), 0);
        assert_eq!(t.count(99, 99), 0);
        assert_eq!(t.total(), 4);
    }

    #[test]
    fn marginals_are_consistent() {
        let t = ContingencyTable::from_pairs([(0, 0), (0, 1), (1, 0), (1, 0), (2, 1)]);
        assert_eq!(t.row_totals().iter().sum::<u64>(), t.total());
        assert_eq!(t.col_totals().iter().sum::<u64>(), t.total());
    }

    #[test]
    fn degenerate_single_column_rejected() {
        // Both variables constant in one dimension → cannot test.
        let t = ContingencyTable::from_pairs([(0, 5), (1, 5), (0, 5)]);
        assert_eq!(t.independence_test(), Err(StatsError::DegenerateTable));
    }

    #[test]
    fn empty_table_rejected() {
        let t = ContingencyTable::from_pairs(std::iter::empty());
        assert_eq!(t.independence_test(), Err(StatsError::EmptySample));
    }

    #[test]
    fn empty_rows_are_dropped_not_counted_in_dof() {
        // 3 row labels but middle row empty: dof should be (2-1)(2-1) = 1.
        let t = ContingencyTable::from_counts(vec![vec![5, 0], vec![0, 0], vec![0, 5]]).unwrap();
        let r = t.independence_test().unwrap();
        assert_eq!(r.dof, 1);
    }

    #[test]
    fn larger_tables_skip_yates_under_auto() {
        let t = ContingencyTable::from_counts(vec![vec![10, 0, 0], vec![0, 10, 0], vec![0, 0, 10]])
            .unwrap();
        let r = t.independence_test().unwrap();
        assert!(!r.yates_applied);
        assert_eq!(r.dof, 4);
        assert!(r.p_value < 1e-9);
    }

    #[test]
    fn yates_always_policy() {
        let t = ContingencyTable::from_counts(vec![vec![10, 0, 0], vec![0, 10, 0], vec![0, 0, 10]])
            .unwrap();
        let r = t.independence_test_with(YatesCorrection::Always).unwrap();
        assert!(r.yates_applied);
        // Correction only shrinks the statistic.
        let plain = t.independence_test_with(YatesCorrection::Never).unwrap();
        assert!(r.statistic < plain.statistic);
    }

    #[test]
    fn contingency_coefficient_bounds() {
        let r = bell_table()
            .independence_test_with(YatesCorrection::Never)
            .unwrap();
        // C = sqrt(16/32) = 0.707… for the Bell table.
        assert!((r.contingency_coefficient - (0.5f64).sqrt()).abs() < 1e-12);
        assert!(r.contingency_coefficient >= 0.0 && r.contingency_coefficient < 1.0);
    }

    #[test]
    fn from_counts_validation() {
        assert!(ContingencyTable::from_counts(vec![]).is_err());
        assert!(ContingencyTable::from_counts(vec![vec![]]).is_err());
        assert!(ContingencyTable::from_counts(vec![vec![1, 2], vec![3]]).is_err());
    }

    #[test]
    fn display_renders_all_cells() {
        let t = bell_table();
        let s = t.to_string();
        assert!(s.contains('8'));
        assert!(s.lines().count() >= 3);
    }

    #[test]
    fn paper_buggy_routing_p_value_scale() {
        // §4.4: with mis-routed control qubits the paper reports p = 0.121
        // at 16 shots — a weakly dependent-looking table that must NOT be
        // declared entangled. Emulate with a nearly independent 2×2 table.
        let t = ContingencyTable::from_counts(vec![vec![6, 2], vec![3, 5]]).unwrap();
        let r = t.independence_test().unwrap();
        assert!(r.p_value > 0.05, "p = {}", r.p_value);
    }
}
