use std::error::Error;
use std::fmt;

/// Errors produced by statistical routines in this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum StatsError {
    /// The test was given no observations.
    EmptySample,
    /// Observed and expected vectors have different lengths.
    LengthMismatch {
        /// Number of observed bins supplied.
        observed: usize,
        /// Number of expected bins supplied.
        expected: usize,
    },
    /// An expected probability/count was negative or all were zero.
    InvalidExpected,
    /// A contingency table needs at least two rows and two columns with
    /// nonzero marginals to test for independence.
    DegenerateTable,
    /// The test statistic has zero degrees of freedom.
    ZeroDegreesOfFreedom,
    /// A function argument was outside its mathematical domain.
    DomainError(&'static str),
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatsError::EmptySample => write!(f, "no observations supplied"),
            StatsError::LengthMismatch { observed, expected } => write!(
                f,
                "observed bins ({observed}) do not match expected bins ({expected})"
            ),
            StatsError::InvalidExpected => {
                write!(f, "expected distribution is negative or identically zero")
            }
            StatsError::DegenerateTable => write!(
                f,
                "contingency table needs at least two nonempty rows and columns"
            ),
            StatsError::ZeroDegreesOfFreedom => {
                write!(f, "test statistic has zero degrees of freedom")
            }
            StatsError::DomainError(what) => write!(f, "argument outside domain: {what}"),
        }
    }
}

impl Error for StatsError {}
