//! # qdb-stats — statistical machinery for quantum program assertions
//!
//! This crate implements, from scratch, the statistical tests that the ISCA
//! 2019 paper *Statistical Assertions for Validating Patterns and Finding
//! Bugs in Quantum Programs* (Huang & Martonosi) uses to decide whether an
//! ensemble of quantum measurement outcomes is consistent with a
//! *classical*, *superposition*, *entangled*, or *product* state:
//!
//! * [`special`] — log-gamma, regularized incomplete gamma, and error
//!   functions (the numerical substrate, in the style of *Numerical
//!   Recipes*, which the paper cites as reference \[42\]).
//! * [`chi2`] — the chi-square distribution and the one-sample chi-square
//!   goodness-of-fit test used by `assert_classical` and
//!   `assert_superposition`.
//! * [`contingency`] — contingency-table analysis (chi-square test of
//!   independence, Yates continuity correction, Cramér's V and the
//!   contingency coefficient) used by `assert_entangled` and
//!   `assert_product`.
//! * [`histogram`] — outcome counting for measurement ensembles.
//!
//! # Example
//!
//! Deciding whether two measured bit-strings are correlated (the Bell-state
//! contingency table from Figure 1 of the paper):
//!
//! ```
//! use qdb_stats::contingency::ContingencyTable;
//!
//! // 16 shots of a Bell pair: outcomes always agree.
//! let pairs: Vec<(u64, u64)> = (0..16).map(|i| (i % 2, i % 2)).collect();
//! let table = ContingencyTable::from_pairs(pairs.iter().copied());
//! let result = table.independence_test()?;
//! assert!(result.p_value < 0.05, "correlated outcomes must be detected");
//! # Ok::<(), qdb_stats::StatsError>(())
//! ```

#![warn(missing_docs)]

pub mod chi2;
pub mod contingency;
pub mod exact;
pub mod histogram;
pub mod special;

mod error;

pub use chi2::{chi2_cdf, chi2_sf, ChiSquareResult, GoodnessOfFit};
pub use contingency::{ContingencyResult, ContingencyTable};
pub use error::StatsError;
pub use exact::{fisher_exact, fisher_exact_table, g_test, FisherResult};
pub use histogram::Histogram;

/// Conventional significance level used throughout the paper (p ≤ 0.05
/// rejects the null hypothesis).
pub const DEFAULT_ALPHA: f64 = 0.05;
