//! Chi-square distribution and the one-sample goodness-of-fit test.
//!
//! `assert_classical` and `assert_superposition` from the paper are both
//! instances of a chi-square goodness-of-fit test:
//!
//! * **classical** — the hypothesized distribution is a point mass at the
//!   expected integer value (modelled with a small smoothing mass `ε` spread
//!   over the other bins so expected counts are never exactly zero);
//! * **superposition** — the hypothesized distribution is uniform over all
//!   `2ⁿ` outcomes.
//!
//! A small p-value (≤ 0.05 in the paper) rejects the null hypothesis and
//! therefore *fires* the assertion.

use crate::special::{gamma_p, gamma_q};
use crate::StatsError;

/// Outcome of a chi-square test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChiSquareResult {
    /// The χ² statistic, `Σ (Oᵢ − Eᵢ)² / Eᵢ`.
    pub statistic: f64,
    /// Degrees of freedom of the reference distribution.
    pub dof: usize,
    /// Right-tail probability `P(X ≥ statistic)` under the null hypothesis.
    pub p_value: f64,
}

impl ChiSquareResult {
    /// `true` when the null hypothesis is rejected at significance `alpha`.
    ///
    /// ```
    /// use qdb_stats::ChiSquareResult;
    /// let r = ChiSquareResult { statistic: 16.0, dof: 1, p_value: 0.0005 };
    /// assert!(r.rejects(0.05));
    /// assert!(!r.rejects(0.0001));
    /// ```
    #[must_use]
    pub fn rejects(&self, alpha: f64) -> bool {
        self.p_value <= alpha
    }
}

/// Survival function of the chi-square distribution with `dof` degrees of
/// freedom: `P(X ≥ x) = Q(dof/2, x/2)`.
///
/// # Errors
///
/// Returns [`StatsError::ZeroDegreesOfFreedom`] for `dof == 0` and
/// [`StatsError::DomainError`] for negative `x`.
///
/// ```
/// use qdb_stats::chi2_sf;
/// // χ²(1) at x = 3.841 is the classic 5% critical point.
/// let p = chi2_sf(3.841459, 1)?;
/// assert!((p - 0.05).abs() < 1e-6);
/// # Ok::<(), qdb_stats::StatsError>(())
/// ```
pub fn chi2_sf(x: f64, dof: usize) -> Result<f64, StatsError> {
    if dof == 0 {
        return Err(StatsError::ZeroDegreesOfFreedom);
    }
    if x < 0.0 {
        return Err(StatsError::DomainError("chi2_sf requires x >= 0"));
    }
    gamma_q(dof as f64 / 2.0, x / 2.0)
}

/// Cumulative distribution function of the chi-square distribution:
/// `P(X ≤ x) = P(dof/2, x/2)`.
///
/// # Errors
///
/// Same domain requirements as [`chi2_sf`].
pub fn chi2_cdf(x: f64, dof: usize) -> Result<f64, StatsError> {
    if dof == 0 {
        return Err(StatsError::ZeroDegreesOfFreedom);
    }
    if x < 0.0 {
        return Err(StatsError::DomainError("chi2_cdf requires x >= 0"));
    }
    gamma_p(dof as f64 / 2.0, x / 2.0)
}

/// Default smoothing mass used by [`GoodnessOfFit::point_mass`]. The paper's
/// classical assertion expects *all* probability at one value; a literal
/// zero expected count makes the χ² statistic undefined, so a small ε is
/// spread across the other bins (any observation off the peak then produces
/// an enormous statistic and `p ≈ 0`, matching the paper's reported
/// `p-value = 0.0`).
pub const DEFAULT_POINT_MASS_EPSILON: f64 = 1e-6;

/// A one-sample chi-square goodness-of-fit test against a fixed expected
/// distribution.
///
/// Construct with [`GoodnessOfFit::uniform`], [`GoodnessOfFit::point_mass`],
/// or [`GoodnessOfFit::new`] for an arbitrary hypothesis, then feed observed
/// counts to [`GoodnessOfFit::test_counts`].
///
/// ```
/// use qdb_stats::GoodnessOfFit;
/// // 64 shots of a 2-qubit uniform superposition, perfectly flat:
/// let gof = GoodnessOfFit::uniform(4)?;
/// let result = gof.test_counts(&[16, 16, 16, 16])?;
/// assert!(result.p_value > 0.99);
/// # Ok::<(), qdb_stats::StatsError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GoodnessOfFit {
    expected: Vec<f64>,
    pooling_threshold: f64,
}

impl GoodnessOfFit {
    /// Test against an arbitrary expected probability vector. The vector is
    /// normalized internally.
    ///
    /// # Errors
    ///
    /// [`StatsError::InvalidExpected`] if any entry is negative, not finite,
    /// or all entries are zero; [`StatsError::EmptySample`] for an empty
    /// vector.
    pub fn new<I: IntoIterator<Item = f64>>(expected: I) -> Result<Self, StatsError> {
        let expected: Vec<f64> = expected.into_iter().collect();
        if expected.is_empty() {
            return Err(StatsError::EmptySample);
        }
        if expected.iter().any(|&p| p < 0.0 || !p.is_finite()) {
            return Err(StatsError::InvalidExpected);
        }
        let total: f64 = expected.iter().sum();
        if total <= 0.0 {
            return Err(StatsError::InvalidExpected);
        }
        Ok(Self {
            expected: expected.into_iter().map(|p| p / total).collect(),
            pooling_threshold: 0.0,
        })
    }

    /// The uniform hypothesis over `bins` outcomes — the paper's
    /// *superposition* assertion.
    ///
    /// # Errors
    ///
    /// [`StatsError::EmptySample`] if `bins == 0`.
    pub fn uniform(bins: usize) -> Result<Self, StatsError> {
        if bins == 0 {
            return Err(StatsError::EmptySample);
        }
        Self::new(std::iter::repeat_n(1.0, bins))
    }

    /// A point-mass hypothesis at bin `index` — the paper's *classical*
    /// assertion. Mass `1 − ε` sits on `index`; `ε` is spread across the
    /// remaining bins ([`DEFAULT_POINT_MASS_EPSILON`] by default via
    /// [`GoodnessOfFit::point_mass`]).
    ///
    /// # Errors
    ///
    /// [`StatsError::DomainError`] if `index ≥ bins` or `ε ∉ (0, 1)`;
    /// [`StatsError::EmptySample`] if `bins == 0`.
    pub fn point_mass_with_epsilon(
        bins: usize,
        index: usize,
        epsilon: f64,
    ) -> Result<Self, StatsError> {
        if bins == 0 {
            return Err(StatsError::EmptySample);
        }
        if index >= bins {
            return Err(StatsError::DomainError("point mass index out of range"));
        }
        if !(0.0..1.0).contains(&epsilon) || (bins > 1 && epsilon == 0.0) {
            return Err(StatsError::DomainError("epsilon must lie in (0, 1)"));
        }
        let mut expected = vec![
            if bins > 1 {
                epsilon / (bins as f64 - 1.0)
            } else {
                0.0
            };
            bins
        ];
        expected[index] = 1.0 - if bins > 1 { epsilon } else { 0.0 };
        Self::new(expected)
    }

    /// [`GoodnessOfFit::point_mass_with_epsilon`] with the default ε.
    ///
    /// # Errors
    ///
    /// See [`GoodnessOfFit::point_mass_with_epsilon`].
    pub fn point_mass(bins: usize, index: usize) -> Result<Self, StatsError> {
        Self::point_mass_with_epsilon(bins, index, DEFAULT_POINT_MASS_EPSILON)
    }

    /// Pool bins whose expected *count* (probability × sample size) falls
    /// below `min_expected` into a single bin before computing the
    /// statistic. The textbook rule of thumb is `min_expected = 5`;
    /// `0` (the default) disables pooling.
    #[must_use]
    pub fn with_pooling(mut self, min_expected: f64) -> Self {
        self.pooling_threshold = min_expected.max(0.0);
        self
    }

    /// Number of bins in the hypothesized distribution.
    #[must_use]
    pub fn bins(&self) -> usize {
        self.expected.len()
    }

    /// The normalized expected probability vector.
    #[must_use]
    pub fn expected(&self) -> &[f64] {
        &self.expected
    }

    /// Run the test on observed per-bin counts.
    ///
    /// # Errors
    ///
    /// * [`StatsError::LengthMismatch`] if `observed.len() != self.bins()`;
    /// * [`StatsError::EmptySample`] if all observed counts are zero;
    /// * [`StatsError::ZeroDegreesOfFreedom`] if pooling collapses the table
    ///   to a single bin.
    pub fn test_counts(&self, observed: &[u64]) -> Result<ChiSquareResult, StatsError> {
        if observed.len() != self.expected.len() {
            return Err(StatsError::LengthMismatch {
                observed: observed.len(),
                expected: self.expected.len(),
            });
        }
        let n: u64 = observed.iter().sum();
        if n == 0 {
            return Err(StatsError::EmptySample);
        }
        let n_f = n as f64;

        // Optional pooling of low-expectation bins.
        let mut cells: Vec<(f64, f64)> = Vec::with_capacity(self.expected.len());
        let mut pooled_obs = 0.0;
        let mut pooled_exp = 0.0;
        for (&obs, &p) in observed.iter().zip(&self.expected) {
            let e = p * n_f;
            if self.pooling_threshold > 0.0 && e < self.pooling_threshold {
                pooled_obs += obs as f64;
                pooled_exp += e;
            } else {
                cells.push((obs as f64, e));
            }
        }
        if pooled_exp > 0.0 || pooled_obs > 0.0 {
            cells.push((pooled_obs, pooled_exp));
        }
        if cells.len() < 2 {
            return Err(StatsError::ZeroDegreesOfFreedom);
        }

        let mut statistic = 0.0;
        for (obs, exp) in &cells {
            if *exp <= 0.0 {
                // A bin the hypothesis says is impossible: any observation
                // there is infinite evidence against the null.
                if *obs > 0.0 {
                    return Ok(ChiSquareResult {
                        statistic: f64::INFINITY,
                        dof: cells.len() - 1,
                        p_value: 0.0,
                    });
                }
                continue;
            }
            let d = obs - exp;
            statistic += d * d / exp;
        }
        let dof = cells.len() - 1;
        let p_value = chi2_sf(statistic, dof)?;
        Ok(ChiSquareResult {
            statistic,
            dof,
            p_value,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sf_cdf_complementary() {
        for dof in 1..=10usize {
            for &x in &[0.1, 1.0, 5.0, 20.0] {
                let s = chi2_sf(x, dof).unwrap();
                let c = chi2_cdf(x, dof).unwrap();
                assert!((s + c - 1.0).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn sf_reference_critical_points() {
        // Textbook 5% critical values.
        let crit = [
            (1usize, 3.841),
            (2, 5.991),
            (3, 7.815),
            (4, 9.488),
            (10, 18.307),
        ];
        for (dof, x) in crit {
            let p = chi2_sf(x, dof).unwrap();
            assert!((p - 0.05).abs() < 5e-4, "dof {dof}: p = {p}");
        }
    }

    #[test]
    fn sf_monotone_decreasing_in_x() {
        let mut prev = 1.0;
        for i in 0..50 {
            let p = chi2_sf(i as f64 * 0.5, 3).unwrap();
            assert!(p <= prev + 1e-12);
            prev = p;
        }
    }

    #[test]
    fn sf_rejects_zero_dof_and_negative_x() {
        assert_eq!(chi2_sf(1.0, 0), Err(StatsError::ZeroDegreesOfFreedom));
        assert!(chi2_sf(-1.0, 2).is_err());
        assert!(chi2_cdf(-1.0, 2).is_err());
    }

    #[test]
    fn uniform_flat_counts_pass() {
        let gof = GoodnessOfFit::uniform(8).unwrap();
        let result = gof.test_counts(&[8; 8]).unwrap();
        assert!(result.statistic.abs() < 1e-12);
        assert!(result.p_value > 0.999);
        assert_eq!(result.dof, 7);
    }

    #[test]
    fn uniform_concentrated_counts_fail() {
        let gof = GoodnessOfFit::uniform(8).unwrap();
        let result = gof.test_counts(&[64, 0, 0, 0, 0, 0, 0, 0]).unwrap();
        assert!(result.rejects(0.05));
        assert!(result.p_value < 1e-10);
    }

    #[test]
    fn point_mass_pass_and_fail() {
        let gof = GoodnessOfFit::point_mass(16, 5).unwrap();
        let mut counts = [0u64; 16];
        counts[5] = 100;
        let pass = gof.test_counts(&counts).unwrap();
        assert!(pass.p_value > 0.99, "pass p = {}", pass.p_value);

        counts[5] = 99;
        counts[6] = 1;
        let fail = gof.test_counts(&counts).unwrap();
        assert!(fail.p_value < 1e-6, "fail p = {}", fail.p_value);
    }

    #[test]
    fn point_mass_single_bin_is_degenerate() {
        let gof = GoodnessOfFit::point_mass(1, 0).unwrap();
        assert_eq!(gof.test_counts(&[4]), Err(StatsError::ZeroDegreesOfFreedom));
    }

    #[test]
    fn point_mass_index_validation() {
        assert!(GoodnessOfFit::point_mass(4, 4).is_err());
        assert!(GoodnessOfFit::point_mass_with_epsilon(4, 0, 0.0).is_err());
        assert!(GoodnessOfFit::point_mass_with_epsilon(4, 0, 1.0).is_err());
    }

    #[test]
    fn new_normalizes() {
        let gof = GoodnessOfFit::new([2.0, 2.0]).unwrap();
        assert_eq!(gof.expected(), &[0.5, 0.5]);
    }

    #[test]
    fn new_rejects_bad_input() {
        assert_eq!(
            GoodnessOfFit::new(std::iter::empty()),
            Err(StatsError::EmptySample)
        );
        assert_eq!(
            GoodnessOfFit::new([1.0, -0.5]),
            Err(StatsError::InvalidExpected)
        );
        assert_eq!(
            GoodnessOfFit::new([0.0, 0.0]),
            Err(StatsError::InvalidExpected)
        );
        assert_eq!(
            GoodnessOfFit::new([f64::NAN, 1.0]),
            Err(StatsError::InvalidExpected)
        );
    }

    #[test]
    fn length_mismatch_detected() {
        let gof = GoodnessOfFit::uniform(4).unwrap();
        assert_eq!(
            gof.test_counts(&[1, 2, 3]),
            Err(StatsError::LengthMismatch {
                observed: 3,
                expected: 4
            })
        );
    }

    #[test]
    fn empty_sample_detected() {
        let gof = GoodnessOfFit::uniform(4).unwrap();
        assert_eq!(gof.test_counts(&[0; 4]), Err(StatsError::EmptySample));
    }

    #[test]
    fn pooling_merges_sparse_bins() {
        // Uniform over 64 bins with only 16 shots: expected counts are 0.25
        // per bin. With pooling at 5 everything pools into one bin →
        // degenerate; combined with one heavy bin it should still work.
        let mut expected = vec![1.0; 64];
        expected[0] = 640.0; // heavily weighted bin keeps the table nondegenerate
        let gof = GoodnessOfFit::new(expected).unwrap().with_pooling(5.0);
        let mut counts = [0u64; 64];
        counts[0] = 60;
        counts[1] = 4;
        let result = gof.test_counts(&counts).unwrap();
        assert_eq!(result.dof, 1); // heavy bin + pooled remainder
        assert!(result.p_value > 0.0);
    }

    #[test]
    fn impossible_bin_observation_gives_zero_p() {
        // Hypothesis assigns exactly zero to bin 1 (no smoothing).
        let gof = GoodnessOfFit::new([1.0, 0.0, 1.0]).unwrap();
        let result = gof.test_counts(&[5, 1, 5]).unwrap();
        assert_eq!(result.p_value, 0.0);
        assert!(result.statistic.is_infinite());
    }

    #[test]
    fn paper_scale_classical_assertion_16_shots() {
        // The paper's smallest ensembles are 16 shots; a clean classical
        // state must pass with p ≈ 1.0 and a single stray count must fail.
        let gof = GoodnessOfFit::point_mass(32, 25).unwrap();
        let mut counts = [0u64; 32];
        counts[25] = 16;
        assert!(gof.test_counts(&counts).unwrap().p_value > 0.999);
        counts[25] = 15;
        counts[3] = 1;
        assert!(gof.test_counts(&counts).unwrap().p_value < 1e-10);
    }
}
