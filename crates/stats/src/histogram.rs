//! Outcome counting for measurement ensembles.

use std::collections::BTreeMap;
use std::fmt;

/// A histogram of integer measurement outcomes.
///
/// Quantum registers collapse to integers in `0..2ⁿ`; an ensemble of shots
/// yields a multiset of such integers. `Histogram` counts them and converts
/// to the dense count vectors the chi-square tests consume.
///
/// ```
/// use qdb_stats::Histogram;
/// let h: Histogram = [5u64, 5, 2, 5].into_iter().collect();
/// assert_eq!(h.count(5), 3);
/// assert_eq!(h.total(), 4);
/// assert_eq!(h.mode(), Some(5));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Histogram {
    counts: BTreeMap<u64, u64>,
    total: u64,
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one observation of `outcome`.
    pub fn record(&mut self, outcome: u64) {
        *self.counts.entry(outcome).or_insert(0) += 1;
        self.total += 1;
    }

    /// Record `n` observations of `outcome`.
    pub fn record_n(&mut self, outcome: u64, n: u64) {
        if n == 0 {
            return;
        }
        *self.counts.entry(outcome).or_insert(0) += n;
        self.total += n;
    }

    /// Number of times `outcome` was observed.
    #[must_use]
    pub fn count(&self, outcome: u64) -> u64 {
        self.counts.get(&outcome).copied().unwrap_or(0)
    }

    /// Total number of observations.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of distinct outcomes observed.
    #[must_use]
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// The most frequent outcome, if any (ties broken toward the smaller
    /// outcome).
    #[must_use]
    pub fn mode(&self) -> Option<u64> {
        self.counts
            .iter()
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(a.0)))
            .map(|(&k, _)| k)
    }

    /// Empirical probability of `outcome`.
    #[must_use]
    pub fn frequency(&self, outcome: u64) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.count(outcome) as f64 / self.total as f64
        }
    }

    /// Dense count vector over the domain `0..domain_size`.
    ///
    /// Outcomes outside the domain are ignored (callers should validate the
    /// register width instead of relying on truncation).
    #[must_use]
    pub fn dense_counts(&self, domain_size: usize) -> Vec<u64> {
        let mut v = vec![0u64; domain_size];
        for (&outcome, &n) in &self.counts {
            if let Ok(i) = usize::try_from(outcome) {
                if i < domain_size {
                    v[i] = n;
                }
            }
        }
        v
    }

    /// Iterate over `(outcome, count)` pairs in ascending outcome order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts.iter().map(|(&k, &v)| (k, v))
    }
}

impl FromIterator<u64> for Histogram {
    fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> Self {
        let mut h = Histogram::new();
        for x in iter {
            h.record(x);
        }
        h
    }
}

impl Extend<u64> for Histogram {
    fn extend<I: IntoIterator<Item = u64>>(&mut self, iter: I) {
        for x in iter {
            self.record(x);
        }
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.counts.is_empty() {
            return write!(f, "(empty histogram)");
        }
        for (outcome, count) in self.iter() {
            writeln!(
                f,
                "{outcome:>8}: {count:>6}  ({:.4})",
                count as f64 / self.total as f64
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_count() {
        let mut h = Histogram::new();
        h.record(3);
        h.record(3);
        h.record(1);
        assert_eq!(h.count(3), 2);
        assert_eq!(h.count(1), 1);
        assert_eq!(h.count(0), 0);
        assert_eq!(h.total(), 3);
        assert_eq!(h.distinct(), 2);
    }

    #[test]
    fn record_n_batches() {
        let mut h = Histogram::new();
        h.record_n(7, 5);
        h.record_n(7, 0);
        assert_eq!(h.count(7), 5);
        assert_eq!(h.total(), 5);
    }

    #[test]
    fn mode_prefers_higher_count_then_smaller_outcome() {
        let h: Histogram = [1u64, 2, 2, 3, 3].into_iter().collect();
        assert_eq!(h.mode(), Some(2));
        assert_eq!(Histogram::new().mode(), None);
    }

    #[test]
    fn frequency_normalizes() {
        let h: Histogram = [0u64, 0, 1, 1].into_iter().collect();
        assert!((h.frequency(0) - 0.5).abs() < 1e-15);
        assert_eq!(Histogram::new().frequency(0), 0.0);
    }

    #[test]
    fn dense_counts_covers_domain() {
        let h: Histogram = [0u64, 2, 2, 5].into_iter().collect();
        assert_eq!(h.dense_counts(4), vec![1, 0, 2, 0]); // 5 out of domain
        assert_eq!(h.dense_counts(8), vec![1, 0, 2, 0, 0, 1, 0, 0]);
    }

    #[test]
    fn extend_and_collect() {
        let mut h: Histogram = [1u64, 1].into_iter().collect();
        h.extend([2u64, 2, 2]);
        assert_eq!(h.total(), 5);
        assert_eq!(h.count(2), 3);
    }

    #[test]
    fn display_contains_frequencies() {
        let h: Histogram = [4u64, 4].into_iter().collect();
        let s = h.to_string();
        assert!(s.contains("1.0000"));
        assert_eq!(Histogram::new().to_string(), "(empty histogram)");
    }

    #[test]
    fn iter_is_sorted() {
        let h: Histogram = [9u64, 1, 5].into_iter().collect();
        let keys: Vec<u64> = h.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec![1, 5, 9]);
    }
}
