//! Special functions used by the chi-square machinery.
//!
//! Implemented from scratch following the classical algorithms popularized
//! by *Numerical Recipes* (the paper's reference \[42\]): a Lanczos
//! approximation for `ln Γ`, the series and continued-fraction expansions of
//! the regularized incomplete gamma function, and the error function derived
//! from it.

use crate::StatsError;

/// Lanczos coefficients (g = 7, n = 9), good to ~15 significant digits.
const LANCZOS_G: f64 = 7.0;
#[allow(clippy::excessive_precision)] // published coefficients, kept verbatim
const LANCZOS_COEF: [f64; 9] = [
    0.999_999_999_999_809_93,
    676.520_368_121_885_1,
    -1_259.139_216_722_402_8,
    771.323_428_777_653_13,
    -176.615_029_162_140_6,
    12.507_343_278_686_905,
    -0.138_571_095_265_720_12,
    9.984_369_578_019_572e-6,
    1.505_632_735_149_311_6e-7,
];

/// Natural logarithm of the gamma function, `ln Γ(x)`, for `x > 0`.
///
/// Uses the Lanczos approximation with reflection for `x < 0.5`.
///
/// # Examples
///
/// ```
/// use qdb_stats::special::ln_gamma;
/// // Γ(5) = 24
/// assert!((ln_gamma(5.0) - 24f64.ln()).abs() < 1e-12);
/// ```
///
/// # Panics
///
/// Does not panic; returns `f64::NAN` for non-positive integers and
/// `f64::INFINITY`-adjacent values where Γ diverges.
pub fn ln_gamma(x: f64) -> f64 {
    if x < 0.5 {
        // Reflection formula: Γ(x)Γ(1−x) = π / sin(πx).
        let sin_pi_x = (std::f64::consts::PI * x).sin();
        if sin_pi_x == 0.0 {
            return f64::NAN;
        }
        std::f64::consts::PI.ln() - sin_pi_x.abs().ln() - ln_gamma(1.0 - x)
    } else {
        let x = x - 1.0;
        let mut acc = LANCZOS_COEF[0];
        for (i, &c) in LANCZOS_COEF.iter().enumerate().skip(1) {
            acc += c / (x + i as f64);
        }
        let t = x + LANCZOS_G + 0.5;
        0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
    }
}

/// The gamma function `Γ(x)` for moderate arguments.
///
/// ```
/// use qdb_stats::special::gamma;
/// assert!((gamma(0.5) - std::f64::consts::PI.sqrt()).abs() < 1e-12);
/// ```
pub fn gamma(x: f64) -> f64 {
    if x < 0.5 {
        std::f64::consts::PI / ((std::f64::consts::PI * x).sin() * gamma(1.0 - x))
    } else {
        ln_gamma(x).exp()
    }
}

const GAMMA_EPS: f64 = 1e-15;
const GAMMA_MAX_ITER: usize = 500;
/// Smallest representable-ish value used to guard continued fractions.
const FPMIN: f64 = f64::MIN_POSITIVE / GAMMA_EPS;

/// Series expansion of the lower regularized incomplete gamma `P(a, x)`.
///
/// Converges quickly for `x < a + 1`.
fn gamma_p_series(a: f64, x: f64) -> f64 {
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..GAMMA_MAX_ITER {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * GAMMA_EPS {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// Continued-fraction (Lentz) expansion of the upper regularized incomplete
/// gamma `Q(a, x)`. Converges quickly for `x ≥ a + 1`.
fn gamma_q_cf(a: f64, x: f64) -> f64 {
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / FPMIN;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..=GAMMA_MAX_ITER {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = b + an / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < GAMMA_EPS {
            break;
        }
    }
    (-x + a * x.ln() - ln_gamma(a)).exp() * h
}

/// Lower regularized incomplete gamma function `P(a, x) = γ(a, x) / Γ(a)`.
///
/// `P(a, 0) = 0` and `P(a, ∞) = 1`.
///
/// # Errors
///
/// Returns [`StatsError::DomainError`] if `a ≤ 0` or `x < 0`.
///
/// ```
/// use qdb_stats::special::gamma_p;
/// // P(1, x) = 1 − e^{−x}
/// let p = gamma_p(1.0, 2.0)?;
/// assert!((p - (1.0 - (-2.0f64).exp())).abs() < 1e-12);
/// # Ok::<(), qdb_stats::StatsError>(())
/// ```
pub fn gamma_p(a: f64, x: f64) -> Result<f64, StatsError> {
    if a <= 0.0 {
        return Err(StatsError::DomainError("gamma_p requires a > 0"));
    }
    if x < 0.0 {
        return Err(StatsError::DomainError("gamma_p requires x >= 0"));
    }
    if x == 0.0 {
        return Ok(0.0);
    }
    Ok(if x < a + 1.0 {
        gamma_p_series(a, x)
    } else {
        1.0 - gamma_q_cf(a, x)
    })
}

/// Upper regularized incomplete gamma function `Q(a, x) = 1 − P(a, x)`.
///
/// This is the survival function of the gamma distribution and the direct
/// route to chi-square p-values.
///
/// # Errors
///
/// Returns [`StatsError::DomainError`] if `a ≤ 0` or `x < 0`.
pub fn gamma_q(a: f64, x: f64) -> Result<f64, StatsError> {
    if a <= 0.0 {
        return Err(StatsError::DomainError("gamma_q requires a > 0"));
    }
    if x < 0.0 {
        return Err(StatsError::DomainError("gamma_q requires x >= 0"));
    }
    if x == 0.0 {
        return Ok(1.0);
    }
    Ok(if x < a + 1.0 {
        1.0 - gamma_p_series(a, x)
    } else {
        gamma_q_cf(a, x)
    })
}

/// The error function `erf(x) = P(1/2, x²)·sign(x)`.
///
/// ```
/// use qdb_stats::special::erf;
/// assert!((erf(1.0) - 0.8427007929497149).abs() < 1e-10);
/// assert!((erf(-1.0) + 0.8427007929497149).abs() < 1e-10);
/// ```
pub fn erf(x: f64) -> f64 {
    let p = gamma_p(0.5, x * x).unwrap_or(1.0);
    if x >= 0.0 {
        p
    } else {
        -p
    }
}

/// The complementary error function `erfc(x) = 1 − erf(x)`.
///
/// Computed through `Q(1/2, x²)` for positive `x` so that the tail retains
/// full relative precision (important for tiny p-values such as the
/// paper's `p = 0.0005`).
pub fn erfc(x: f64) -> f64 {
    if x >= 0.0 {
        gamma_q(0.5, x * x).unwrap_or(0.0)
    } else {
        1.0 + gamma_p(0.5, x * x).unwrap_or(1.0)
    }
}

/// Natural logarithm of `n!`, exact in spirit for large `n` via `ln Γ`.
///
/// ```
/// use qdb_stats::special::ln_factorial;
/// assert!((ln_factorial(5) - 120f64.ln()).abs() < 1e-12);
/// ```
pub fn ln_factorial(n: u64) -> f64 {
    ln_gamma(n as f64 + 1.0)
}

/// Binomial coefficient `C(n, k)` as `f64` (exact for small arguments,
/// accurate to double precision otherwise).
pub fn binomial(n: u64, k: u64) -> f64 {
    if k > n {
        return 0.0;
    }
    (ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!(
            (a - b).abs() < tol,
            "expected {b}, got {a} (diff {})",
            (a - b).abs()
        );
    }

    #[test]
    fn ln_gamma_matches_factorials() {
        for n in 1u64..=20 {
            let fact: f64 = (1..=n.saturating_sub(1)).map(|k| k as f64).product();
            close(ln_gamma(n as f64), fact.ln(), 1e-10);
        }
    }

    #[test]
    fn ln_gamma_half_integer() {
        // Γ(1/2) = √π, Γ(3/2) = √π/2.
        close(ln_gamma(0.5), std::f64::consts::PI.sqrt().ln(), 1e-12);
        close(
            ln_gamma(1.5),
            (std::f64::consts::PI.sqrt() / 2.0).ln(),
            1e-12,
        );
    }

    #[test]
    fn gamma_recurrence_holds() {
        // Γ(x+1) = xΓ(x)
        for &x in &[0.3, 1.7, 4.2, 9.9] {
            close(gamma(x + 1.0), x * gamma(x), 1e-9 * gamma(x + 1.0).abs());
        }
    }

    #[test]
    fn gamma_p_q_sum_to_one() {
        for &a in &[0.5, 1.0, 2.5, 10.0, 50.0] {
            for &x in &[0.1, 1.0, 5.0, 25.0, 80.0] {
                let p = gamma_p(a, x).unwrap();
                let q = gamma_q(a, x).unwrap();
                close(p + q, 1.0, 1e-10);
            }
        }
    }

    #[test]
    fn gamma_p_exponential_special_case() {
        // P(1, x) = 1 − e^{−x}
        for &x in &[0.2, 1.0, 3.0, 10.0] {
            close(gamma_p(1.0, x).unwrap(), 1.0 - (-x).exp(), 1e-12);
        }
    }

    #[test]
    fn gamma_p_boundaries() {
        assert_eq!(gamma_p(2.0, 0.0).unwrap(), 0.0);
        assert_eq!(gamma_q(2.0, 0.0).unwrap(), 1.0);
        assert!(gamma_p(2.0, 1e6).unwrap() > 1.0 - 1e-12);
    }

    #[test]
    fn gamma_domain_errors() {
        assert!(gamma_p(0.0, 1.0).is_err());
        assert!(gamma_p(-1.0, 1.0).is_err());
        assert!(gamma_p(1.0, -0.5).is_err());
        assert!(gamma_q(0.0, 1.0).is_err());
    }

    #[test]
    fn erf_reference_values() {
        close(erf(0.0), 0.0, 1e-15);
        close(erf(0.5), 0.5204998778130465, 1e-10);
        close(erf(2.0), 0.9953222650189527, 1e-10);
        close(erfc(2.0), 0.004677734981063131, 1e-12);
    }

    #[test]
    fn erf_is_odd() {
        for &x in &[0.1, 0.7, 1.3, 2.9] {
            close(erf(-x), -erf(x), 1e-14);
        }
    }

    #[test]
    fn erfc_tail_precision() {
        // erfc(√8) ≈ 6.33e-5: the uncorrected Bell-table p-value at 16 shots.
        let v = erfc(8f64.sqrt());
        close(v, 6.33424836662398e-5, 1e-12);
    }

    #[test]
    fn binomial_pascal_identity() {
        for n in 1u64..15 {
            for k in 1..n {
                close(
                    binomial(n, k),
                    binomial(n - 1, k - 1) + binomial(n - 1, k),
                    1e-6,
                );
            }
        }
        assert_eq!(binomial(5, 7), 0.0);
    }
}
