//! Small-sample alternatives to the chi-square tests: Fisher's exact
//! test and the G-test (log-likelihood ratio).
//!
//! The paper runs contingency tests on ensembles as small as 16 shots —
//! exactly the regime where the chi-square approximation is weakest and
//! statisticians reach for Fisher's exact test. QDB offers all three so
//! the choice can be ablated (see the `stats_cost` bench and the
//! `EntanglementTest` option in `qdb-core`).

use crate::contingency::ContingencyTable;
use crate::special::ln_factorial;
use crate::{chi2_sf, ChiSquareResult, StatsError};

/// Result of Fisher's exact test on a 2×2 table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FisherResult {
    /// Two-sided p-value (sum of all table probabilities no larger than
    /// the observed table's, at fixed margins).
    pub p_value: f64,
    /// The hypergeometric probability of the observed table itself.
    pub p_observed: f64,
}

impl FisherResult {
    /// `true` when independence is rejected at `alpha`.
    #[must_use]
    pub fn dependent(&self, alpha: f64) -> bool {
        self.p_value <= alpha
    }
}

/// Natural log of the hypergeometric probability of cell `a` in a 2×2
/// table with row sums `r1, r2` and first-column sum `c1`.
fn ln_hypergeometric(a: u64, r1: u64, r2: u64, c1: u64) -> f64 {
    let n = r1 + r2;
    let b = r1 - a;
    let c = c1 - a;
    let d = r2 - c;
    ln_factorial(r1) + ln_factorial(r2) + ln_factorial(c1) + ln_factorial(n - c1)
        - ln_factorial(n)
        - ln_factorial(a)
        - ln_factorial(b)
        - ln_factorial(c)
        - ln_factorial(d)
}

/// Fisher's exact test (two-sided) for a 2×2 contingency table given as
/// `[[a, b], [c, d]]`.
///
/// # Errors
///
/// [`StatsError::EmptySample`] when all cells are zero;
/// [`StatsError::DegenerateTable`] when a margin is zero.
///
/// ```
/// use qdb_stats::exact::fisher_exact;
/// // The paper's ideal 16-shot Bell table.
/// let r = fisher_exact([[8, 0], [0, 8]])?;
/// assert!(r.p_value < 0.001);
/// # Ok::<(), qdb_stats::StatsError>(())
/// ```
pub fn fisher_exact(table: [[u64; 2]; 2]) -> Result<FisherResult, StatsError> {
    let [[a, b], [c, d]] = table;
    let r1 = a + b;
    let r2 = c + d;
    let c1 = a + c;
    let n = r1 + r2;
    if n == 0 {
        return Err(StatsError::EmptySample);
    }
    if r1 == 0 || r2 == 0 || c1 == 0 || c1 == n {
        return Err(StatsError::DegenerateTable);
    }
    let ln_p_obs = ln_hypergeometric(a, r1, r2, c1);
    let a_min = c1.saturating_sub(r2);
    let a_max = r1.min(c1);
    let mut p_value = 0.0;
    // Two-sided: include every table at least as extreme (probability no
    // larger than the observed, with a small tolerance for float ties).
    for k in a_min..=a_max {
        let ln_p = ln_hypergeometric(k, r1, r2, c1);
        if ln_p <= ln_p_obs + 1e-9 {
            p_value += ln_p.exp();
        }
    }
    Ok(FisherResult {
        p_value: p_value.min(1.0),
        p_observed: ln_p_obs.exp(),
    })
}

/// Fisher's exact test on a [`ContingencyTable`], which must be 2×2
/// after dropping empty rows/columns.
///
/// # Errors
///
/// [`StatsError::DegenerateTable`] if the live table is not 2×2;
/// [`StatsError::EmptySample`] on an empty table.
pub fn fisher_exact_table(table: &ContingencyTable) -> Result<FisherResult, StatsError> {
    if table.total() == 0 {
        return Err(StatsError::EmptySample);
    }
    let live_rows: Vec<u64> = table
        .row_labels()
        .iter()
        .copied()
        .filter(|&r| table.col_labels().iter().any(|&c| table.count(r, c) > 0))
        .collect();
    let live_cols: Vec<u64> = table
        .col_labels()
        .iter()
        .copied()
        .filter(|&c| table.row_labels().iter().any(|&r| table.count(r, c) > 0))
        .collect();
    if live_rows.len() != 2 || live_cols.len() != 2 {
        return Err(StatsError::DegenerateTable);
    }
    fisher_exact([
        [
            table.count(live_rows[0], live_cols[0]),
            table.count(live_rows[0], live_cols[1]),
        ],
        [
            table.count(live_rows[1], live_cols[0]),
            table.count(live_rows[1], live_cols[1]),
        ],
    ])
}

/// The G-test (log-likelihood ratio test) of independence on a
/// contingency table: `G = 2 Σ O ln(O / E)`, asymptotically χ²
/// distributed with the same degrees of freedom as the Pearson test.
///
/// # Errors
///
/// Same conditions as
/// [`ContingencyTable::independence_test`](crate::ContingencyTable::independence_test).
pub fn g_test(table: &ContingencyTable) -> Result<ChiSquareResult, StatsError> {
    let n = table.total();
    if n == 0 {
        return Err(StatsError::EmptySample);
    }
    let row_totals = table.row_totals();
    let col_totals = table.col_totals();
    let live_rows: Vec<usize> = (0..row_totals.len())
        .filter(|&r| row_totals[r] > 0)
        .collect();
    let live_cols: Vec<usize> = (0..col_totals.len())
        .filter(|&c| col_totals[c] > 0)
        .collect();
    if live_rows.len() < 2 || live_cols.len() < 2 {
        return Err(StatsError::DegenerateTable);
    }
    let n_f = n as f64;
    let mut g = 0.0;
    for &r in &live_rows {
        for &c in &live_cols {
            let observed = table.count(table.row_labels()[r], table.col_labels()[c]) as f64;
            if observed == 0.0 {
                continue;
            }
            let expected = row_totals[r] as f64 * col_totals[c] as f64 / n_f;
            g += observed * (observed / expected).ln();
        }
    }
    g *= 2.0;
    let dof = (live_rows.len() - 1) * (live_cols.len() - 1);
    Ok(ChiSquareResult {
        statistic: g,
        dof,
        p_value: chi2_sf(g.max(0.0), dof)?,
    })
}

/// The G goodness-of-fit statistic against expected probabilities
/// (companion to [`crate::GoodnessOfFit`]): `G = 2 Σ O ln(O / E)`.
///
/// # Errors
///
/// [`StatsError::LengthMismatch`], [`StatsError::EmptySample`],
/// [`StatsError::InvalidExpected`], or
/// [`StatsError::ZeroDegreesOfFreedom`] on malformed inputs.
pub fn g_test_gof(observed: &[u64], expected_probs: &[f64]) -> Result<ChiSquareResult, StatsError> {
    if observed.len() != expected_probs.len() {
        return Err(StatsError::LengthMismatch {
            observed: observed.len(),
            expected: expected_probs.len(),
        });
    }
    if observed.len() < 2 {
        return Err(StatsError::ZeroDegreesOfFreedom);
    }
    let n: u64 = observed.iter().sum();
    if n == 0 {
        return Err(StatsError::EmptySample);
    }
    let total_p: f64 = expected_probs.iter().sum();
    if expected_probs.iter().any(|&p| p < 0.0 || !p.is_finite()) || total_p <= 0.0 {
        return Err(StatsError::InvalidExpected);
    }
    let mut g = 0.0;
    for (&obs, &p) in observed.iter().zip(expected_probs) {
        if obs == 0 {
            continue;
        }
        let e = p / total_p * n as f64;
        if e <= 0.0 {
            // Observation where the hypothesis allows none: infinite
            // evidence against the null.
            return Ok(ChiSquareResult {
                statistic: f64::INFINITY,
                dof: observed.len() - 1,
                p_value: 0.0,
            });
        }
        g += obs as f64 * (obs as f64 / e).ln();
    }
    g *= 2.0;
    let dof = observed.len() - 1;
    Ok(ChiSquareResult {
        statistic: g.max(0.0),
        dof,
        p_value: chi2_sf(g.max(0.0), dof)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fisher_reference_value_tea_tasting() {
        // Fisher's original tea-tasting table [[3,1],[1,3]]: two-sided
        // p ≈ 0.4857.
        let r = fisher_exact([[3, 1], [1, 3]]).unwrap();
        assert!((r.p_value - 0.485_714).abs() < 1e-5, "p = {}", r.p_value);
    }

    #[test]
    fn fisher_bell_table_is_significant() {
        let r = fisher_exact([[8, 0], [0, 8]]).unwrap();
        // Exact p = 2 / C(16,8) = 2/12870 ≈ 1.554e-4.
        assert!(
            (r.p_value - 2.0 / 12870.0).abs() < 1e-9,
            "p = {}",
            r.p_value
        );
        assert!(r.dependent(0.05));
    }

    #[test]
    fn fisher_independent_table_not_significant() {
        let r = fisher_exact([[4, 4], [4, 4]]).unwrap();
        assert!(r.p_value > 0.99);
        assert!(!r.dependent(0.05));
    }

    #[test]
    fn fisher_probabilities_sum_to_one_over_support() {
        // Sanity: Σ_k P(k) = 1 at fixed margins.
        let (r1, r2, c1) = (6u64, 10u64, 7u64);
        let a_min = c1.saturating_sub(r2);
        let a_max = r1.min(c1);
        let total: f64 = (a_min..=a_max)
            .map(|k| ln_hypergeometric(k, r1, r2, c1).exp())
            .sum();
        assert!((total - 1.0).abs() < 1e-10);
    }

    #[test]
    fn fisher_rejects_degenerate_margins() {
        assert_eq!(
            fisher_exact([[0, 0], [3, 4]]),
            Err(StatsError::DegenerateTable)
        );
        assert_eq!(
            fisher_exact([[2, 0], [3, 0]]),
            Err(StatsError::DegenerateTable)
        );
        assert_eq!(fisher_exact([[0, 0], [0, 0]]), Err(StatsError::EmptySample));
    }

    #[test]
    fn fisher_on_contingency_table() {
        let t = ContingencyTable::from_counts(vec![vec![8, 0], vec![0, 8]]).unwrap();
        let r = fisher_exact_table(&t).unwrap();
        assert!(r.p_value < 1e-3);
        // 3×3 table is rejected.
        let t3 = ContingencyTable::from_counts(vec![vec![1, 2, 3], vec![3, 2, 1], vec![1, 1, 1]])
            .unwrap();
        assert_eq!(fisher_exact_table(&t3), Err(StatsError::DegenerateTable));
    }

    #[test]
    fn fisher_table_drops_empty_rows() {
        let t = ContingencyTable::from_counts(vec![vec![8, 0], vec![0, 0], vec![0, 8]]).unwrap();
        let r = fisher_exact_table(&t).unwrap();
        assert!(r.p_value < 1e-3);
    }

    #[test]
    fn g_test_agrees_with_chi2_on_large_samples() {
        // Asymptotically G ≈ χ²: compare on a big mildly-dependent table.
        let pairs: Vec<(u64, u64)> = (0..10_000)
            .map(|i| (i % 2, if i % 10 < 6 { i % 2 } else { (i + 1) % 2 }))
            .collect();
        let t = ContingencyTable::from_pairs(pairs);
        let g = g_test(&t).unwrap();
        let chi = t
            .independence_test_with(crate::contingency::YatesCorrection::Never)
            .unwrap();
        let rel = (g.statistic - chi.statistic).abs() / chi.statistic;
        assert!(rel < 0.02, "G = {}, χ² = {}", g.statistic, chi.statistic);
    }

    #[test]
    fn g_test_independent_table() {
        let t = ContingencyTable::from_counts(vec![vec![25, 25], vec![25, 25]]).unwrap();
        let g = g_test(&t).unwrap();
        assert!(g.statistic.abs() < 1e-9);
        assert!(g.p_value > 0.999);
    }

    #[test]
    fn g_test_degenerate_and_empty() {
        let t = ContingencyTable::from_pairs([(0u64, 1u64), (0, 0)]);
        assert_eq!(g_test(&t), Err(StatsError::DegenerateTable));
        let empty = ContingencyTable::from_pairs(std::iter::empty());
        assert_eq!(g_test(&empty), Err(StatsError::EmptySample));
    }

    #[test]
    fn g_gof_flat_counts_pass() {
        let r = g_test_gof(&[10, 10, 10, 10], &[0.25; 4]).unwrap();
        assert!(r.statistic.abs() < 1e-12);
        assert!(r.p_value > 0.999);
    }

    #[test]
    fn g_gof_concentrated_counts_fail() {
        let r = g_test_gof(&[40, 0, 0, 0], &[0.25; 4]).unwrap();
        assert!(r.p_value < 1e-10);
    }

    #[test]
    fn g_gof_impossible_bin() {
        let r = g_test_gof(&[5, 1], &[1.0, 0.0]).unwrap();
        assert_eq!(r.p_value, 0.0);
        assert!(r.statistic.is_infinite());
    }

    #[test]
    fn g_gof_validation() {
        assert!(matches!(
            g_test_gof(&[1, 2], &[0.5]),
            Err(StatsError::LengthMismatch { .. })
        ));
        assert_eq!(
            g_test_gof(&[0, 0], &[0.5, 0.5]),
            Err(StatsError::EmptySample)
        );
        assert_eq!(
            g_test_gof(&[1, 2], &[-0.5, 1.5]),
            Err(StatsError::InvalidExpected)
        );
        assert_eq!(
            g_test_gof(&[1], &[1.0]),
            Err(StatsError::ZeroDegreesOfFreedom)
        );
    }
}
