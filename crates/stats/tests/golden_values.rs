//! Golden-value tests: every number here was computed *outside* this
//! crate, so these tests pin the statistical machinery to external
//! references rather than to itself.
//!
//! Provenance: chi-square survival values come from the closed forms
//! `sf(x, 2k) = e^{-x/2} Σ_{j<k} (x/2)^j / j!` and
//! `sf(x, 1) = erfc(√(x/2))` (plus the two-step dof recurrence),
//! evaluated with Python 3 `math` (`erfc`/`exp`/`factorial`) at double
//! precision; Fisher values are exact hypergeometric tail sums over
//! `math.comb` integers. Critical points (3.841…, 5.991…, 7.814…) are
//! the standard χ² α = 0.05 table entries.

use qdb_stats::contingency::YatesCorrection;
use qdb_stats::exact::fisher_exact;
use qdb_stats::{chi2_cdf, chi2_sf, ContingencyTable, GoodnessOfFit};

fn assert_close(actual: f64, expected: f64, tol: f64, what: &str) {
    assert!(
        (actual - expected).abs() <= tol,
        "{what}: got {actual:.16e}, want {expected:.16e}"
    );
}

#[test]
fn chi2_survival_function_matches_references() {
    // (x, dof, sf) — Python: closed forms above.
    let cases = [
        (1.0, 1, 0.317_310_507_862_914),
        (4.0, 1, 0.045_500_263_896_358_4),
        (9.0, 1, 0.002_699_796_063_260_191),
        (20.0, 1, 7.744_216_431_044_074e-6),
        (2.0, 2, 0.367_879_441_171_442_3),
        (14.0, 2, 9.118_819_655_545_162e-4),
        (10.0, 4, 0.040_427_681_994_512_8),
    ];
    for (x, dof, want) in cases {
        let got = chi2_sf(x, dof).unwrap();
        assert_close(got, want, 1e-12, &format!("chi2_sf({x}, {dof})"));
        let cdf = chi2_cdf(x, dof).unwrap();
        assert_close(cdf, 1.0 - want, 1e-12, &format!("chi2_cdf({x}, {dof})"));
    }
}

#[test]
fn chi2_critical_points_sit_at_alpha_05() {
    // Standard χ² upper-5% critical values, dof 1..3.
    let critical = [
        (3.841_458_820_694_124, 1),
        (5.991_464_547_107_979, 2),
        (7.814_727_903_251_179, 3),
    ];
    for (x, dof) in critical {
        let p = chi2_sf(x, dof).unwrap();
        assert_close(p, 0.05, 1e-9, &format!("critical point dof={dof}"));
    }
}

#[test]
fn goodness_of_fit_against_hand_computed_statistic() {
    // Observed [50, 30, 20] against uniform over 3 bins: expected
    // 100/3 each, χ² = Σ(O−E)²/E = 14.0 exactly, p = sf(14, 2) = e⁻⁷.
    let gof = GoodnessOfFit::uniform(3).unwrap();
    let result = gof.test_counts(&[50, 30, 20]).unwrap();
    assert_close(result.statistic, 14.0, 1e-9, "gof statistic");
    assert_eq!(result.dof, 2);
    assert_close(result.p_value, 9.118_819_655_545_162e-4, 1e-12, "gof p");
    assert!(result.rejects(0.05));
    assert!(!result.rejects(0.0001));
}

#[test]
fn contingency_independence_against_closed_form() {
    // 2×2 table [[30, 10], [10, 30]]: the closed form
    // χ² = n(ad − bc)²/(r₁r₂c₁c₂) gives exactly 20.0 uncorrected and
    // 18.05 with the Yates continuity correction.
    let mut pairs = Vec::new();
    pairs.extend(std::iter::repeat_n((0u64, 0u64), 30));
    pairs.extend(std::iter::repeat_n((0u64, 1u64), 10));
    pairs.extend(std::iter::repeat_n((1u64, 0u64), 10));
    pairs.extend(std::iter::repeat_n((1u64, 1u64), 30));
    let table = ContingencyTable::from_pairs(pairs);

    let plain = table
        .independence_test_with(YatesCorrection::Never)
        .unwrap();
    assert_close(plain.statistic, 20.0, 1e-9, "plain statistic");
    assert_eq!(plain.dof, 1);
    assert_close(plain.p_value, 7.744_216_431_044_074e-6, 1e-15, "plain p");
    assert!(plain.dependent(0.05), "strongly correlated table");

    let yates = table
        .independence_test_with(YatesCorrection::Always)
        .unwrap();
    assert_close(yates.statistic, 18.05, 1e-9, "yates statistic");
    assert_close(yates.p_value, 2.151_786_437_812_016e-5, 1e-15, "yates p");

    // The default policy applies Yates to live 2×2 tables.
    let auto = table.independence_test().unwrap();
    assert_close(auto.statistic, yates.statistic, 1e-12, "auto = yates");
}

#[test]
fn contingency_verdicts_on_independent_table() {
    // [[25, 25], [25, 25]] is exactly independent: χ² = 0, p = 1.
    let table = ContingencyTable::from_counts(vec![vec![25, 25], vec![25, 25]]).unwrap();
    let result = table
        .independence_test_with(YatesCorrection::Never)
        .unwrap();
    assert_close(result.statistic, 0.0, 1e-12, "independent statistic");
    assert_close(result.p_value, 1.0, 1e-12, "independent p");
    assert!(!result.dependent(0.05));
}

#[test]
fn fisher_exact_against_hypergeometric_sums() {
    // [[1, 9], [11, 3]] — the classic tea-tasting-style example;
    // two-sided p sums all tables with point probability ≤ observed.
    let r = fisher_exact([[1, 9], [11, 3]]).unwrap();
    assert_close(r.p_observed, 1.346_076_187_912_236e-3, 1e-12, "p_obs");
    assert_close(r.p_value, 2.759_456_185_220_083e-3, 1e-12, "fisher p");
    assert!(r.dependent(0.05));

    let r2 = fisher_exact([[8, 2], [1, 5]]).unwrap();
    assert_close(r2.p_observed, 0.023_601_398_601_398_6, 1e-12, "p_obs 2");
    assert_close(r2.p_value, 0.034_965_034_965_034_96, 1e-12, "fisher p 2");
}
