//! Property-based tests of the statistical machinery's mathematical
//! invariants.

use proptest::prelude::*;
use qdb_stats::contingency::YatesCorrection;
use qdb_stats::exact::{fisher_exact, g_test_gof};
use qdb_stats::special::{gamma_p, gamma_q, ln_gamma};
use qdb_stats::{chi2_cdf, chi2_sf, ContingencyTable, GoodnessOfFit};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn gamma_recurrence(x in 0.1f64..30.0) {
        // ln Γ(x+1) = ln x + ln Γ(x)
        let lhs = ln_gamma(x + 1.0);
        let rhs = x.ln() + ln_gamma(x);
        prop_assert!((lhs - rhs).abs() < 1e-8 * lhs.abs().max(1.0));
    }

    #[test]
    fn incomplete_gamma_complementarity(a in 0.2f64..40.0, x in 0.0f64..80.0) {
        let p = gamma_p(a, x).unwrap();
        let q = gamma_q(a, x).unwrap();
        prop_assert!((0.0..=1.0 + 1e-12).contains(&p));
        prop_assert!((0.0..=1.0 + 1e-12).contains(&q));
        prop_assert!((p + q - 1.0).abs() < 1e-9);
    }

    #[test]
    fn incomplete_gamma_monotone_in_x(a in 0.2f64..20.0, x in 0.0f64..40.0, dx in 0.0f64..10.0) {
        prop_assert!(gamma_p(a, x + dx).unwrap() + 1e-12 >= gamma_p(a, x).unwrap());
    }

    #[test]
    fn chi2_cdf_sf_are_proper(x in 0.0f64..100.0, dof in 1..30usize) {
        let cdf = chi2_cdf(x, dof).unwrap();
        let sf = chi2_sf(x, dof).unwrap();
        prop_assert!((0.0..=1.0).contains(&cdf));
        prop_assert!((0.0..=1.0).contains(&sf));
        prop_assert!((cdf + sf - 1.0).abs() < 1e-9);
    }

    #[test]
    fn chi2_sf_monotone_in_dof(x in 0.1f64..30.0, dof in 1..20usize) {
        // At fixed x, more degrees of freedom ⇒ larger tail probability.
        let p1 = chi2_sf(x, dof).unwrap();
        let p2 = chi2_sf(x, dof + 1).unwrap();
        prop_assert!(p2 + 1e-12 >= p1);
    }

    #[test]
    fn gof_statistic_nonnegative_and_p_valid(
        counts in prop::collection::vec(0u64..100, 2..10),
    ) {
        prop_assume!(counts.iter().sum::<u64>() > 0);
        let gof = GoodnessOfFit::uniform(counts.len()).unwrap();
        let r = gof.test_counts(&counts).unwrap();
        prop_assert!(r.statistic >= 0.0);
        prop_assert!((0.0..=1.0).contains(&r.p_value));
        prop_assert_eq!(r.dof, counts.len() - 1);
    }

    #[test]
    fn gof_scaling_counts_up_increases_significance(
        weights in prop::collection::vec(1u64..20, 2..6),
    ) {
        // A fixed deviation pattern becomes more significant at 10×
        // the sample size.
        prop_assume!(weights.iter().any(|&w| w != weights[0]));
        let gof = GoodnessOfFit::uniform(weights.len()).unwrap();
        let small = gof.test_counts(&weights).unwrap();
        let big: Vec<u64> = weights.iter().map(|&w| w * 10).collect();
        let large = gof.test_counts(&big).unwrap();
        prop_assert!(large.p_value <= small.p_value + 1e-12);
    }

    #[test]
    fn g_and_pearson_gof_agree_in_the_large_sample_limit(
        weights in prop::collection::vec(1u64..6, 3..6),
    ) {
        let bins = weights.len();
        let counts: Vec<u64> = weights.iter().map(|&w| w * 500).collect();
        let expected = vec![1.0 / bins as f64; bins];
        let g = g_test_gof(&counts, &expected).unwrap();
        let pearson = GoodnessOfFit::uniform(bins).unwrap().test_counts(&counts).unwrap();
        // Both statistics grow together; compare on a log scale.
        if pearson.statistic > 1.0 && g.statistic > 1.0 {
            let ratio = g.statistic / pearson.statistic;
            prop_assert!((0.5..2.0).contains(&ratio), "ratio = {ratio}");
        }
    }

    #[test]
    fn contingency_yates_never_increases_statistic(
        pairs in prop::collection::vec((0..2u64, 0..2u64), 8..100),
    ) {
        let t = ContingencyTable::from_pairs(pairs.iter().copied());
        let plain = t.independence_test_with(YatesCorrection::Never);
        let corrected = t.independence_test_with(YatesCorrection::Always);
        if let (Ok(p), Ok(c)) = (plain, corrected) {
            prop_assert!(c.statistic <= p.statistic + 1e-12);
            prop_assert!(c.p_value + 1e-12 >= p.p_value);
        }
    }

    #[test]
    fn fisher_p_value_is_a_probability(
        a in 0u64..12, b in 0u64..12, c in 0u64..12, d in 0u64..12,
    ) {
        if let Ok(r) = fisher_exact([[a, b], [c, d]]) {
            prop_assert!((0.0..=1.0).contains(&r.p_value));
            prop_assert!(r.p_observed <= r.p_value + 1e-12);
        }
    }

    #[test]
    fn fisher_invariant_under_row_and_column_swaps(
        a in 1u64..10, b in 1u64..10, c in 1u64..10, d in 1u64..10,
    ) {
        let base = fisher_exact([[a, b], [c, d]]).unwrap();
        let rows = fisher_exact([[c, d], [a, b]]).unwrap();
        let cols = fisher_exact([[b, a], [d, c]]).unwrap();
        prop_assert!((base.p_value - rows.p_value).abs() < 1e-9);
        prop_assert!((base.p_value - cols.p_value).abs() < 1e-9);
    }
}
