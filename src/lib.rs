//! # QDB — statistical assertions for quantum programs
//!
//! Umbrella crate re-exporting the full QDB toolchain, a Rust reproduction
//! of *Statistical Assertions for Validating Patterns and Finding Bugs in
//! Quantum Programs* (Huang & Martonosi, ISCA 2019):
//!
//! * [`stats`] — chi-square tests and contingency-table analysis;
//! * [`sim`] — the dense state-vector simulator;
//! * [`circuit`] — the quantum program IR, builder, and OpenQASM support;
//! * [`core`] — assertions, breakpoints, ensemble runs, and the debugger;
//! * [`server`] — the supervised session service: admission control,
//!   retry/backoff, checkpoint-resume, and graceful degradation;
//! * [`algos`] — the Shor / Grover / quantum-chemistry benchmarks and the
//!   paper's six injectable bug types.
//!
//! # Quickstart
//!
//! The paper's Figure 1 session — build a Bell pair, assert the two
//! measured qubits are entangled, and let the debugger decide — runs
//! (not just compiles) as a doctest, so this front-page example cannot
//! rot:
//!
//! ```
//! use qdb::circuit::{GateSink, Program, QReg};
//! use qdb::core::{Debugger, EnsembleConfig};
//!
//! // Write the program: H then CNOT make the Bell pair.
//! let mut program = Program::new();
//! let q = program.alloc_register("q", 2);
//! program.h(q.bit(0));
//! program.cx(q.bit(0), q.bit(1));
//!
//! // Quantum breakpoint: assert the halves will measure correlated.
//! let m0 = QReg::new("m0", vec![q.bit(0)]);
//! let m1 = QReg::new("m1", vec![q.bit(1)]);
//! program.assert_entangled(&m0, &m1);
//!
//! // Debug it: 64 shots per assertion, fixed seed, default checkpointed
//! // sweep execution.
//! let config = EnsembleConfig::default().with_shots(64).with_seed(2019);
//! let report = Debugger::new(config).run(&program)?;
//! assert!(report.all_passed(), "the Bell pair must test as entangled");
//! println!("{report}");
//! # Ok::<(), qdb::core::CoreError>(())
//! ```
//!
//! `examples/quickstart.rs` extends this session with a look at the
//! underlying contingency table; the `examples/` directory covers the
//! other workloads (see the README's runnable-examples table).

#![warn(missing_docs)]

pub use qdb_algos as algos;
pub use qdb_circuit as circuit;
pub use qdb_core as core;
pub use qdb_server as server;
pub use qdb_sim as sim;
pub use qdb_stats as stats;
