//! # QDB — statistical assertions for quantum programs
//!
//! Umbrella crate re-exporting the full QDB toolchain, a Rust reproduction
//! of *Statistical Assertions for Validating Patterns and Finding Bugs in
//! Quantum Programs* (Huang & Martonosi, ISCA 2019):
//!
//! * [`stats`] — chi-square tests and contingency-table analysis;
//! * [`sim`] — the dense state-vector simulator;
//! * [`circuit`] — the quantum program IR, builder, and OpenQASM support;
//! * [`core`] — assertions, breakpoints, ensemble runs, and the debugger;
//! * [`algos`] — the Shor / Grover / quantum-chemistry benchmarks and the
//!   paper's six injectable bug types.
//!
//! See `examples/quickstart.rs` for an end-to-end debugging session.

pub use qdb_algos as algos;
pub use qdb_circuit as circuit;
pub use qdb_core as core;
pub use qdb_sim as sim;
pub use qdb_stats as stats;
