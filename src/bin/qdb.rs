//! The `qdb` command-line debugger: run statistical assertion checks on
//! a Scaffold-like source file, mirroring the paper's tool flow
//! (Scaffold source → per-breakpoint programs → ensembles → verdicts).
//!
//! ```text
//! qdb check program.scaffold [--shots N] [--seed S] [--alpha A]
//!                            [--noise P] [--readout P] [--method chi2|g|fisher]
//! qdb qasm  program.scaffold            # emit OpenQASM 2.0 for the circuit
//! qdb demo  <bell|shor|grover|h2|bugs>  # run a built-in benchmark session
//! ```

use std::process::ExitCode;

use qdb::algos::gf2::Gf2m;
use qdb::algos::grover::{grover_program, optimal_iterations, GroverStyle};
use qdb::algos::harnesses::{listing4_modmul_harness, BugType, Listing4Params};
use qdb::algos::modular::ControlRouting;
use qdb::algos::shor::{shor_program, ShorConfig};
use qdb::circuit::{parse_scaffold, to_qasm, GateSink, Program, QReg};
use qdb::core::{Debugger, EnsembleConfig, IndependenceMethod};
use qdb::sim::NoiseModel;

fn usage() -> &'static str {
    "qdb — statistical assertions for quantum programs (ISCA 2019 reproduction)

USAGE:
    qdb check <file.scaffold> [options]   parse and debug a Scaffold-like file
    qdb qasm  <file.scaffold>             emit OpenQASM 2.0 for its circuit
    qdb demo  <bell|shor|grover|h2|bugs>  run a built-in benchmark session

OPTIONS (for `check` and `demo`):
    --shots N       ensemble size per breakpoint      (default 1024)
    --seed S        RNG seed                          (default fixed)
    --alpha A       significance level                (default 0.05)
    --noise P       per-gate depolarizing probability (default 0)
    --readout P     readout bit-flip probability      (default 0)
    --method M      chi2 | g | fisher                 (default chi2)
"
}

struct Options {
    config: EnsembleConfig,
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut config = EnsembleConfig::default();
    let mut noise = NoiseModel::noiseless();
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            iter.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--shots" => {
                config.shots = value("--shots")?
                    .parse()
                    .map_err(|_| "--shots expects an integer".to_string())?;
            }
            "--seed" => {
                config.seed = value("--seed")?
                    .parse()
                    .map_err(|_| "--seed expects an integer".to_string())?;
            }
            "--alpha" => {
                config.alpha = value("--alpha")?
                    .parse()
                    .map_err(|_| "--alpha expects a number".to_string())?;
            }
            "--noise" => {
                let p: f64 = value("--noise")?
                    .parse()
                    .map_err(|_| "--noise expects a probability".to_string())?;
                noise = NoiseModel::depolarizing(p).with_readout(noise.readout);
            }
            "--readout" => {
                let p: f64 = value("--readout")?
                    .parse()
                    .map_err(|_| "--readout expects a probability".to_string())?;
                noise = noise.with_readout_flip(p);
            }
            "--method" => {
                config.independence = match value("--method")?.as_str() {
                    "chi2" => IndependenceMethod::PearsonChi2,
                    "g" => IndependenceMethod::GTest,
                    "fisher" => IndependenceMethod::FisherExact,
                    other => return Err(format!("unknown method `{other}`")),
                };
            }
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    let config = config.with_noise(noise);
    Ok(Options { config })
}

fn check_program(program: &Program, options: &Options) -> Result<bool, String> {
    let report = Debugger::new(options.config.clone())
        .run(program)
        .map_err(|e| e.to_string())?;
    println!("{report}");
    for miss in report.statistical_misses() {
        println!(
            "note: breakpoint #{} disagrees with the exact verdict — \
             likely noise or too few shots",
            miss.index
        );
    }
    Ok(report.all_passed())
}

fn cmd_check(path: &str, options: &Options) -> Result<bool, String> {
    let source = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let program = parse_scaffold(&source).map_err(|e| e.to_string())?;
    println!(
        "parsed {path}: {} instructions, {} registers, {} assertions\n",
        program.circuit().len(),
        program.registers().len(),
        program.breakpoints().len()
    );
    check_program(&program, options)
}

fn cmd_qasm(path: &str) -> Result<(), String> {
    let source = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let program = parse_scaffold(&source).map_err(|e| e.to_string())?;
    let qasm = to_qasm(program.circuit()).map_err(|e| e.to_string())?;
    print!("{qasm}");
    Ok(())
}

fn demo_program(name: &str) -> Result<Program, String> {
    match name {
        "bell" => {
            let mut p = Program::new();
            let q = p.alloc_register("q", 2);
            p.h(q.bit(0));
            p.cx(q.bit(0), q.bit(1));
            let m0 = QReg::new("m0", vec![q.bit(0)]);
            let m1 = QReg::new("m1", vec![q.bit(1)]);
            p.assert_entangled(&m0, &m1);
            Ok(p)
        }
        "shor" => Ok(shor_program(
            &ShorConfig::paper_n15(),
            ControlRouting::Correct,
            &Vec::new(),
        )
        .0),
        "grover" => {
            let field = Gf2m::standard(3);
            Ok(grover_program(&field, 5, GroverStyle::Scoped, optimal_iterations(8)).0)
        }
        "h2" => Err("the chemistry benchmark is interactive: run \
                     `cargo run --release --example h2_chemistry`"
            .to_string()),
        "bugs" => Ok(listing4_modmul_harness(Listing4Params::paper().with_wrong_inverse()).0),
        other => Err(format!(
            "unknown demo `{other}` (try bell, shor, grover, h2, bugs)"
        )),
    }
}

fn run() -> Result<bool, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.split_first() {
        Some((cmd, rest)) => {
            match cmd.as_str() {
                "check" => {
                    let (path, opts) = rest
                        .split_first()
                        .ok_or_else(|| "check needs a file".to_string())?;
                    cmd_check(path, &parse_options(opts)?)
                }
                "qasm" => {
                    let (path, _) = rest
                        .split_first()
                        .ok_or_else(|| "qasm needs a file".to_string())?;
                    cmd_qasm(path)?;
                    Ok(true)
                }
                "demo" => {
                    let (name, opts) = rest
                        .split_first()
                        .ok_or_else(|| "demo needs a name".to_string())?;
                    if name == "bugs" {
                        println!("bug-taxonomy sweep:\n");
                        let options = parse_options(opts)?;
                        for bug in BugType::all() {
                            let (program, _) = bug.demonstration();
                            let report = Debugger::new(options.config.clone())
                                .run(&program)
                                .map_err(|e| e.to_string())?;
                            println!(
                                "{bug:?} → {}",
                                report.first_failure().map_or(
                                    "NOT caught".to_string(),
                                    |f| format!("caught at #{} ({})", f.index, f.label)
                                )
                            );
                        }
                        return Ok(true);
                    }
                    let program = demo_program(name)?;
                    check_program(&program, &parse_options(opts)?)
                }
                "--help" | "-h" | "help" => {
                    print!("{}", usage());
                    Ok(true)
                }
                other => Err(format!("unknown command `{other}`\n\n{}", usage())),
            }
        }
        None => {
            print!("{}", usage());
            Ok(true)
        }
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1), // assertions failed
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::from(2)
        }
    }
}
